//! Compact binary trace serialization.
//!
//! The text format ([`crate::textio`]) is the diffable, versionable
//! interchange form; this module is its high-volume twin for traces too
//! large to hold as text (or in memory at all). The layout is fixed-width
//! little-endian:
//!
//! ```text
//! offset  size            field
//! 0       8               magic  b"occbin01"
//! 8       4               num_users   (u32, > 0)
//! 12      4               num_pages   (u32)
//! 16      4 * num_pages   owner table (u32 per page, < num_users)
//! …       8               num_requests (u64)
//! …       4 * num_requests  requested page ids (u32, < num_pages)
//! …       8               footer magic b"occsum01"   (optional)
//! …       4               crc32 of the request-id bytes (u32)
//! ```
//!
//! Requests carry only the page id — the owner is implied by the owner
//! table, exactly as in the text format. Readers and writers move data in
//! bounded chunks, so a billion-request trace streams from disk without
//! full residency: [`BinaryTraceReader`] is a
//! [`RequestSource`](crate::source::RequestSource) whose memory footprint
//! is the owner table plus one chunk, independent of the request count.
//!
//! The footer is a torn-write guard: both writers append it, and both
//! readers verify it when present (a payload whose CRC-32 disagrees with
//! the footer is a parse error, exit 4 at the CLI). Traces written before
//! the footer existed have nothing after the last request and stay
//! accepted. The checksum covers the request-id bytes only — the header's
//! request count is patched after the payload by the incremental writer,
//! so including it would force a second pass over the file.

use crate::checksum::Crc32;
use crate::engine::EngineCtx;
use crate::ids::{PageId, UserId};
use crate::source::{RequestSource, SeekableSource};
use crate::textio::TraceIoError;
use crate::trace::{Request, Trace, TraceBuilder, Universe};
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// First eight bytes of every binary trace.
pub const BINARY_TRACE_MAGIC: [u8; 8] = *b"occbin01";

/// Magic introducing the optional checksum footer after the last request.
pub const BINARY_TRACE_FOOTER_MAGIC: [u8; 8] = *b"occsum01";

/// Page ids per chunk moved by the streaming reader/writer: 64 Ki ids =
/// 256 KiB per transfer, large enough to amortize syscalls, small enough
/// to keep residency trivially bounded.
const CHUNK_IDS: usize = 64 * 1024;

fn parse_err(msg: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse(msg.into())
}

/// Classify an I/O failure while a fixed-width field is being read:
/// running out of bytes mid-field is a malformed (truncated) file, not an
/// environment failure.
fn classify(e: std::io::Error, what: &str) -> TraceIoError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        parse_err(format!("truncated binary trace: unexpected EOF in {what}"))
    } else {
        TraceIoError::Io(e)
    }
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> Result<u32, TraceIoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(|e| classify(e, what))?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, TraceIoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(|e| classify(e, what))?;
    Ok(u64::from_le_bytes(buf))
}

/// Read the magic + universe header, leaving the reader positioned at the
/// request count.
fn read_universe<R: Read>(r: &mut R) -> Result<Universe, TraceIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| classify(e, "the magic"))?;
    if magic != BINARY_TRACE_MAGIC {
        return Err(parse_err(format!(
            "bad magic {magic:?}, expected {BINARY_TRACE_MAGIC:?}"
        )));
    }
    let num_users = read_u32(r, "the user count")?;
    if num_users == 0 {
        return Err(parse_err("a trace needs at least one user"));
    }
    let num_pages = read_u32(r, "the page count")? as usize;
    // Read the owner table chunkwise: the capacity hint is capped so a
    // corrupt header cannot demand an arbitrary allocation up front.
    let mut owners: Vec<UserId> = Vec::with_capacity(num_pages.min(CHUNK_IDS));
    let mut buf = vec![0u8; 4 * CHUNK_IDS];
    let mut remaining = num_pages;
    while remaining > 0 {
        let take = remaining.min(CHUNK_IDS);
        let bytes = &mut buf[..4 * take];
        r.read_exact(bytes)
            .map_err(|e| classify(e, "the owner table"))?;
        for ids in bytes.chunks_exact(4) {
            let u = u32::from_le_bytes(ids.try_into().expect("4-byte chunk"));
            if u >= num_users {
                return Err(parse_err(format!("owner {u} out of range")));
            }
            owners.push(UserId(u));
        }
        remaining -= take;
    }
    Ok(Universe::new(num_users, owners))
}

/// After the last request, look for the optional checksum footer and
/// verify it against the CRC-32 of the request-id bytes just consumed.
/// Zero bytes after the payload is a legacy (pre-footer) trace and is
/// accepted; a footer magic followed by too few bytes is truncation; a
/// checksum disagreement is corruption. Trailing bytes that are not the
/// footer magic are ignored, as they were before the footer existed.
fn check_footer<R: Read>(r: &mut R, payload_crc: u32) -> Result<(), TraceIoError> {
    let mut foot = [0u8; 12];
    let mut got = 0usize;
    while got < foot.len() {
        match r.read(&mut foot[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TraceIoError::Io(e)),
        }
    }
    verify_footer_probe(&foot[..got], payload_crc)
}

/// Verify an occbin01 footer given the (up to 12) bytes that follow the
/// request payload. Shared by the buffered reader (which pulls the probe
/// from its stream) and the mmap source (which slices it off the
/// mapping), so both paths accept and reject exactly the same files.
fn verify_footer_probe(foot: &[u8], payload_crc: u32) -> Result<(), TraceIoError> {
    if foot.len() >= 8 && foot[..8] == BINARY_TRACE_FOOTER_MAGIC {
        if foot.len() < 12 {
            return Err(parse_err(
                "truncated binary trace: unexpected EOF in the footer checksum",
            ));
        }
        let want = u32::from_le_bytes(foot[8..12].try_into().expect("4-byte slice"));
        if want != payload_crc {
            return Err(parse_err(format!(
                "footer checksum mismatch: footer says crc32 {want:08x}, request stream hashes \
                 to {payload_crc:08x} (corrupt or torn trace)"
            )));
        }
    }
    Ok(())
}

/// Write an entire in-memory `trace` in the binary format.
pub fn write_trace_binary<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    let universe = trace.universe();
    w.write_all(&BINARY_TRACE_MAGIC)?;
    w.write_all(&universe.num_users().to_le_bytes())?;
    w.write_all(&universe.num_pages().to_le_bytes())?;
    let mut buf = Vec::with_capacity(4 * CHUNK_IDS);
    for chunk in universe.owners().chunks(CHUNK_IDS) {
        buf.clear();
        for &u in chunk {
            buf.extend_from_slice(&u.0.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut crc = Crc32::new();
    for chunk in trace.requests().chunks(CHUNK_IDS) {
        buf.clear();
        for r in chunk {
            buf.extend_from_slice(&r.page.0.to_le_bytes());
        }
        crc.update(&buf);
        w.write_all(&buf)?;
    }
    w.write_all(&BINARY_TRACE_FOOTER_MAGIC)?;
    w.write_all(&crc.value().to_le_bytes())?;
    Ok(())
}

/// Read a whole binary trace into memory. For traces that do not fit,
/// use [`BinaryTraceReader`] and stream instead.
pub fn read_trace_binary<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let universe = read_universe(&mut r)?;
    let num_pages = universe.num_pages();
    let count = read_u64(&mut r, "the request count")?;
    let mut builder = TraceBuilder::new(universe);
    let mut buf = vec![0u8; 4 * CHUNK_IDS];
    let mut remaining = count;
    let mut crc = Crc32::new();
    while remaining > 0 {
        let take = (remaining as usize).min(CHUNK_IDS);
        let bytes = &mut buf[..4 * take];
        r.read_exact(bytes)
            .map_err(|e| classify(e, "the request stream"))?;
        crc.update(bytes);
        for ids in bytes.chunks_exact(4) {
            let page = u32::from_le_bytes(ids.try_into().expect("4-byte chunk"));
            if page >= num_pages {
                return Err(parse_err(format!("page {page} out of range")));
            }
            builder.push(PageId(page));
        }
        remaining -= take as u64;
    }
    check_footer(&mut r, crc.value())?;
    Ok(builder.build())
}

/// Read a trace in any of the three formats, sniffing the first bytes:
/// fixed-width binary if they begin with [`BINARY_TRACE_MAGIC`], packed
/// binary if with [`crate::binio2::BINARY2_TRACE_MAGIC`], text
/// otherwise.
pub fn read_trace_auto<R: BufRead>(mut r: R) -> Result<Trace, TraceIoError> {
    let head = r.fill_buf()?;
    // Compare against however much of the prefix is available — a file
    // shorter than the magic cannot be binary.
    let prefix = |magic: &[u8]| head.len() >= magic.len() && &head[..magic.len()] == magic;
    if prefix(&BINARY_TRACE_MAGIC) {
        read_trace_binary(r)
    } else if prefix(&crate::binio2::BINARY2_TRACE_MAGIC) {
        crate::binio2::read_trace_binary_v2(r)
    } else {
        crate::textio::read_trace(r)
    }
}

/// Incremental binary-trace writer for streams whose length is not known
/// up front: the request count is written as a placeholder and patched on
/// [`finish`](Self::finish) (which is why the sink must be [`Seek`]).
pub struct BinaryTraceWriter<W: Write + Seek> {
    sink: W,
    universe: Universe,
    count_offset: u64,
    written: u64,
    buf: Vec<u8>,
    crc: Crc32,
}

impl<W: Write + Seek> BinaryTraceWriter<W> {
    /// Write the header for `universe` and return a writer ready to
    /// accept requests.
    pub fn new(universe: Universe, mut sink: W) -> Result<Self, TraceIoError> {
        sink.write_all(&BINARY_TRACE_MAGIC)?;
        sink.write_all(&universe.num_users().to_le_bytes())?;
        sink.write_all(&universe.num_pages().to_le_bytes())?;
        let mut buf = Vec::with_capacity(4 * CHUNK_IDS);
        for chunk in universe.owners().chunks(CHUNK_IDS) {
            buf.clear();
            for &u in chunk {
                buf.extend_from_slice(&u.0.to_le_bytes());
            }
            sink.write_all(&buf)?;
        }
        let count_offset = sink.stream_position()?;
        sink.write_all(&0u64.to_le_bytes())?;
        buf.clear();
        Ok(BinaryTraceWriter {
            sink,
            universe,
            count_offset,
            written: 0,
            buf,
            crc: Crc32::new(),
        })
    }

    /// Append one request. Rejects pages outside the universe and owner
    /// claims that disagree with it (the same invariant [`Trace::new`]
    /// enforces, as a typed error instead of a panic).
    pub fn push(&mut self, req: Request) -> Result<(), TraceIoError> {
        match self.universe.try_owner(req.page) {
            None => {
                return Err(parse_err(format!(
                    "request {}: page {} outside the universe",
                    self.written, req.page
                )))
            }
            Some(owner) if owner != req.user => {
                return Err(parse_err(format!(
                    "request {}: {} does not own {}",
                    self.written, req.user, req.page
                )))
            }
            Some(_) => {}
        }
        let id = req.page.0.to_le_bytes();
        self.crc.update(&id);
        self.buf.extend_from_slice(&id);
        if self.buf.len() >= 4 * CHUNK_IDS {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.written += 1;
        Ok(())
    }

    /// Flush buffered requests, append the checksum footer, patch the
    /// request count into the header, and return the sink. Dropping the
    /// writer without calling this leaves a file whose header promises
    /// zero requests.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        if !self.buf.is_empty() {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.sink.write_all(&BINARY_TRACE_FOOTER_MAGIC)?;
        self.sink.write_all(&self.crc.value().to_le_bytes())?;
        let end = self.sink.stream_position()?;
        self.sink.seek(SeekFrom::Start(self.count_offset))?;
        self.sink.write_all(&self.written.to_le_bytes())?;
        self.sink.seek(SeekFrom::Start(end))?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Chunked binary-trace reader that serves as a
/// [`RequestSource`]: requests stream from the underlying reader
/// `CHUNK_IDS` at a time, so memory stays bounded regardless of how many
/// requests the file holds.
///
/// [`RequestSource::next_request`] has no error channel, so a mid-stream
/// failure (truncation, disk error, out-of-range page) ends the stream
/// early and parks the error in [`error`](Self::error) — run loops should
/// check it (or call [`finish`](Self::finish)) after the source runs dry.
pub struct BinaryTraceReader<R: Read> {
    reader: R,
    universe: Universe,
    total: u64,
    served: u64,
    chunk: Vec<Request>,
    /// Next index to serve from `chunk`.
    pos: usize,
    error: Option<TraceIoError>,
    crc: Crc32,
    footer_checked: bool,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Read the header (universe + request count) and return a source
    /// positioned at the first request.
    pub fn new(mut reader: R) -> Result<Self, TraceIoError> {
        let universe = read_universe(&mut reader)?;
        let total = read_u64(&mut reader, "the request count")?;
        Ok(BinaryTraceReader {
            reader,
            universe,
            total,
            served: 0,
            chunk: Vec::new(),
            pos: 0,
            error: None,
            crc: Crc32::new(),
            footer_checked: false,
        })
    }

    /// Total requests promised by the header.
    pub fn total_requests(&self) -> u64 {
        self.total
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    /// Tear down the source; returns the parked error if the stream
    /// ended early, so callers can surface truncation with a `?`.
    pub fn finish(self) -> Result<(), TraceIoError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn refill(&mut self) -> Result<bool, TraceIoError> {
        // `served` counts requests handed out; buffered-but-unserved
        // requests must be included when computing what is left on disk.
        let buffered = (self.chunk.len() - self.pos) as u64;
        let remaining = self.total - self.served - buffered;
        if remaining == 0 {
            if !self.footer_checked {
                self.footer_checked = true;
                check_footer(&mut self.reader, self.crc.value())?;
            }
            return Ok(false);
        }
        let take = (remaining as usize).min(CHUNK_IDS);
        let mut bytes = vec![0u8; 4 * take];
        self.reader
            .read_exact(&mut bytes)
            .map_err(|e| classify(e, "the request stream"))?;
        self.crc.update(&bytes);
        self.chunk.clear();
        for ids in bytes.chunks_exact(4) {
            let page = u32::from_le_bytes(ids.try_into().expect("4-byte chunk"));
            match self.universe.try_owner(PageId(page)) {
                Some(user) => self.chunk.push(Request {
                    page: PageId(page),
                    user,
                }),
                None => return Err(parse_err(format!("page {page} out of range"))),
            }
        }
        self.pos = 0;
        Ok(true)
    }
}

impl<R: Read> RequestSource for BinaryTraceReader<R> {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
        if self.error.is_some() {
            return None;
        }
        if self.pos >= self.chunk.len() {
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
        let req = self.chunk[self.pos];
        self.pos += 1;
        self.served += 1;
        Some(req)
    }

    fn next_run(&mut self, max: usize) -> Option<&[Request]> {
        if max == 0 || self.error.is_some() {
            return None;
        }
        if self.pos >= self.chunk.len() {
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
        let take = (self.chunk.len() - self.pos).min(max);
        let run = &self.chunk[self.pos..self.pos + take];
        self.pos += take;
        self.served += take as u64;
        Some(run)
    }
}

impl<R: Read> SeekableSource for BinaryTraceReader<R> {
    /// Decode-and-discard fast-forward through the same chunked refill
    /// path as serving, so validation (page range, truncation, footer
    /// checksum) and the running CRC see exactly the bytes a full
    /// replay would. Errors park in [`error`](Self::error) as usual.
    fn seek_forward(&mut self, n: u64) {
        let mut remaining = n;
        while remaining > 0 {
            if self.error.is_some() {
                return;
            }
            let avail = (self.chunk.len() - self.pos) as u64;
            if avail == 0 {
                match self.refill() {
                    Ok(true) => continue,
                    Ok(false) => return,
                    Err(e) => {
                        self.error = Some(e);
                        return;
                    }
                }
            }
            let take = avail.min(remaining);
            self.pos += take as usize;
            self.served += take;
            remaining -= take;
        }
    }
}

/// Zero-copy occbin01 source backed by a read-only memory mapping.
///
/// The fixed-width format stores requests as bare little-endian page
/// ids, and [`PageId`] is `repr(transparent)` over `u32`, so on a
/// little-endian machine a mapped run of ids *is* a `&[PageId]` — no
/// read syscalls, no kernel→user copy, no per-refill allocation, no
/// per-request `Request` construction. [`next_page_run`] hands out
/// slices straight from the mapping; the batched engine derives each
/// request's owner from the universe exactly as the buffered decoder
/// would have.
///
/// What is *not* skipped: every served run is still range-validated
/// against the universe before the engine sees it (a max-scan, so the
/// hot loop stays branch-light and vectorizable), the running CRC still
/// covers every payload byte, and the footer is still verified when the
/// stream drains — the mmap path accepts and rejects exactly the same
/// files as [`BinaryTraceReader`], byte for byte.
///
/// Construction fails (`ErrorKind::Unsupported`) on non-unix targets,
/// big-endian targets, and non-regular files (pipes, sockets,
/// `/dev/stdin`); [`BinarySource::open`] falls back to the buffered
/// reader in all those cases.
///
/// [`next_page_run`]: crate::source::RequestSource::next_page_run
pub struct MmapTraceSource {
    map: mmap::Mmap,
    universe: Universe,
    total: u64,
    /// Byte offset of the first request id within the mapping.
    payload_start: usize,
    served: u64,
    error: Option<TraceIoError>,
    crc: Crc32,
    footer_checked: bool,
}

impl MmapTraceSource {
    /// Map `path` and parse its occbin01 header. Emits the
    /// `madvise(MADV_SEQUENTIAL)` readahead hint immediately: trace
    /// replay is a single front-to-back pass.
    pub fn open(path: &Path) -> Result<Self, TraceIoError> {
        if cfg!(not(all(unix, target_endian = "little"))) {
            // The id bytes are little-endian on disk; reinterpreting
            // them in place needs a little-endian host (and mmap needs
            // unix). Everything else falls back to the buffered reader.
            return Err(TraceIoError::Io(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "zero-copy traces need a little-endian unix host; use the buffered reader",
            )));
        }
        let file = File::open(path)?;
        let meta = file.metadata()?;
        if !meta.is_file() {
            return Err(TraceIoError::Io(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "not a regular file; use the buffered reader",
            )));
        }
        let map = mmap::Mmap::map_readonly(&file)?;
        map.advise_sequential();
        Self::from_map(map)
    }

    fn from_map(map: mmap::Mmap) -> Result<Self, TraceIoError> {
        // `&[u8]` is a `Read` that consumes from the front, so the
        // header parser (and its error vocabulary) is shared verbatim
        // with the buffered path.
        let mut cursor: &[u8] = &map;
        let universe = read_universe(&mut cursor)?;
        let total = read_u64(&mut cursor, "the request count")?;
        let payload_start = map.len() - cursor.len();
        // Header layout guarantees 4-byte alignment of the payload
        // (8 + 4 + 4 + 4·pages + 8), and mappings are page-aligned.
        debug_assert_eq!(payload_start % 4, 0);
        Ok(MmapTraceSource {
            map,
            universe,
            total,
            payload_start,
            served: 0,
            error: None,
            crc: Crc32::new(),
            footer_checked: false,
        })
    }

    /// Total requests promised by the header.
    pub fn total_requests(&self) -> u64 {
        self.total
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    /// Tear down the source; returns the parked error if the stream
    /// ended early, so callers can surface truncation with a `?`.
    pub fn finish(self) -> Result<(), TraceIoError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Verify the optional footer against the mapped bytes after the
    /// payload, once, parking any mismatch.
    fn check_footer_once(&mut self) {
        if self.footer_checked {
            return;
        }
        self.footer_checked = true;
        // `served == total` implies the payload fit in the mapping, so
        // this offset is in bounds.
        let after = self.payload_start + (self.total as usize) * 4;
        let probe = &self.map[after..(after + 12).min(self.map.len())];
        if let Err(e) = verify_footer_probe(probe, self.crc.value()) {
            self.error = Some(e);
        }
    }

    /// The run-serving core: validate, checksum, and hand out up to
    /// `max` ids as a slice of the mapping.
    fn serve_run(&mut self, max: usize) -> Option<&[PageId]> {
        if max == 0 || self.error.is_some() {
            return None;
        }
        let remaining = self.total - self.served;
        if remaining == 0 {
            self.check_footer_once();
            return None;
        }
        let take = (remaining).min(max as u64) as usize;
        let start = self.payload_start + (self.served as usize) * 4;
        let end = start + take * 4;
        if end > self.map.len() {
            self.error = Some(parse_err(
                "truncated binary trace: unexpected EOF in the request stream",
            ));
            return None;
        }
        let bytes = &self.map[start..end];
        // Range-validate with a branch-light max-scan; only on failure
        // (never in a healthy replay) rescan for the first offender so
        // the report matches the buffered reader's.
        let num_pages = self.universe.num_pages();
        let mut worst = 0u32;
        for id in bytes.chunks_exact(4) {
            worst = worst.max(u32::from_le_bytes(id.try_into().expect("4-byte chunk")));
        }
        if worst >= num_pages {
            let bad = bytes
                .chunks_exact(4)
                .map(|id| u32::from_le_bytes(id.try_into().expect("4-byte chunk")))
                .find(|&id| id >= num_pages)
                .expect("max-scan saw an out-of-range id");
            self.error = Some(parse_err(format!("page {bad} out of range")));
            return None;
        }
        self.crc.update(bytes);
        self.served += take as u64;
        // Safety: `bytes` is a 4-aligned (payload_start ≡ 0 mod 4 on a
        // page-aligned mapping, and we advance in whole ids), in-bounds
        // region of `take` little-endian u32s; `PageId` is
        // `repr(transparent)` over `u32`, and construction is gated to
        // little-endian hosts, so the reinterpretation is exact.
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<PageId>(), 0);
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const PageId, take) })
    }
}

impl RequestSource for MmapTraceSource {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
        let page = *self
            .serve_run(1)?
            .first()
            .expect("serve_run(1) is non-empty");
        Some(Request {
            page,
            user: self.universe.owner(page),
        })
    }

    fn next_page_run(&mut self, max: usize) -> Option<&[PageId]> {
        self.serve_run(max)
    }
}

impl SeekableSource for MmapTraceSource {
    /// Fast-forward through the same serving core as replay, so
    /// validation, the running CRC and the footer check see exactly the
    /// bytes a full replay would.
    fn seek_forward(&mut self, n: u64) {
        let mut remaining = n;
        while remaining > 0 {
            let max = remaining.min(CHUNK_IDS as u64) as usize;
            match self.serve_run(max) {
                Some(run) => remaining -= run.len() as u64,
                None => return,
            }
        }
    }
}

/// A binary trace opened from a path, with the access strategy chosen
/// automatically from the file's magic and nature:
///
/// * occbin01, regular file, little-endian unix host → [`Mmap`]
///   (zero-copy, [`MmapTraceSource`]),
/// * occbin01 otherwise (pipe, `/dev/stdin`, exotic platform, or a
///   filesystem where mapping fails) → [`Buffered`]
///   ([`BinaryTraceReader`]),
/// * occbin02 → [`Packed`] (streaming delta/varint decode,
///   [`crate::binio2::Binary2TraceReader`]).
///
/// All three serve identical request streams for identical traces; the
/// choice only affects throughput. Callers that care can log
/// [`strategy`](Self::strategy).
///
/// [`Mmap`]: BinarySource::Mmap
/// [`Buffered`]: BinarySource::Buffered
/// [`Packed`]: BinarySource::Packed
pub enum BinarySource {
    /// Zero-copy mapping of a fixed-width trace.
    Mmap(MmapTraceSource),
    /// Chunked buffered reads of a fixed-width trace.
    Buffered(BinaryTraceReader<BufReader<File>>),
    /// Streaming decode of a packed (delta/varint) trace.
    Packed(crate::binio2::Binary2TraceReader<BufReader<File>>),
}

impl BinarySource {
    /// Open `path`, sniff its magic, and pick the fastest applicable
    /// strategy. Unreadable headers are parse errors regardless of
    /// strategy.
    pub fn open(path: &Path) -> Result<BinarySource, TraceIoError> {
        let file = File::open(path)?;
        let mut reader = BufReader::new(file);
        let head = reader.fill_buf()?;
        let is_v2 = head.len() >= 8 && head[..8] == crate::binio2::BINARY2_TRACE_MAGIC;
        if is_v2 {
            return Ok(BinarySource::Packed(
                crate::binio2::Binary2TraceReader::new(reader)?,
            ));
        }
        let regular = reader
            .get_ref()
            .metadata()
            .map(|m| m.is_file())
            .unwrap_or(false);
        if regular && cfg!(all(unix, target_endian = "little")) {
            match MmapTraceSource::open(path) {
                Ok(src) => return Ok(BinarySource::Mmap(src)),
                // A malformed header is malformed however it is read —
                // report it rather than re-parsing the same bytes.
                Err(e @ TraceIoError::Parse(_)) => return Err(e),
                // Mapping itself failed: fall through to buffered reads.
                Err(TraceIoError::Io(_)) => {}
            }
        }
        Ok(BinarySource::Buffered(BinaryTraceReader::new(reader)?))
    }

    /// Which access strategy was chosen ("mmap", "buffered" or
    /// "packed") — for logs and reports.
    pub fn strategy(&self) -> &'static str {
        match self {
            BinarySource::Mmap(_) => "mmap",
            BinarySource::Buffered(_) => "buffered",
            BinarySource::Packed(_) => "packed",
        }
    }

    /// Total requests promised by the header.
    pub fn total_requests(&self) -> u64 {
        match self {
            BinarySource::Mmap(s) => s.total_requests(),
            BinarySource::Buffered(s) => s.total_requests(),
            BinarySource::Packed(s) => s.total_requests(),
        }
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        match self {
            BinarySource::Mmap(s) => s.error(),
            BinarySource::Buffered(s) => s.error(),
            BinarySource::Packed(s) => s.error(),
        }
    }

    /// Tear down the source; returns the parked error if the stream
    /// ended early.
    pub fn finish(self) -> Result<(), TraceIoError> {
        match self {
            BinarySource::Mmap(s) => s.finish(),
            BinarySource::Buffered(s) => s.finish(),
            BinarySource::Packed(s) => s.finish(),
        }
    }
}

impl RequestSource for BinarySource {
    fn universe(&self) -> &Universe {
        match self {
            BinarySource::Mmap(s) => s.universe(),
            BinarySource::Buffered(s) => s.universe(),
            BinarySource::Packed(s) => s.universe(),
        }
    }

    fn next_request(&mut self, ctx: &EngineCtx) -> Option<Request> {
        match self {
            BinarySource::Mmap(s) => s.next_request(ctx),
            BinarySource::Buffered(s) => s.next_request(ctx),
            BinarySource::Packed(s) => s.next_request(ctx),
        }
    }

    fn next_run(&mut self, max: usize) -> Option<&[Request]> {
        match self {
            BinarySource::Mmap(s) => s.next_run(max),
            BinarySource::Buffered(s) => s.next_run(max),
            BinarySource::Packed(s) => s.next_run(max),
        }
    }

    fn next_page_run(&mut self, max: usize) -> Option<&[PageId]> {
        match self {
            BinarySource::Mmap(s) => s.next_page_run(max),
            BinarySource::Buffered(s) => s.next_page_run(max),
            BinarySource::Packed(s) => s.next_page_run(max),
        }
    }
}

impl SeekableSource for BinarySource {
    fn seek_forward(&mut self, n: u64) {
        match self {
            BinarySource::Mmap(s) => s.seek_forward(n),
            BinarySource::Buffered(s) => s.seek_forward(n),
            BinarySource::Packed(s) => s.seek_forward(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Trace {
        let u = Universe::uniform(2, 2);
        Trace::from_page_indices(&u, &[0, 2, 1, 3, 0])
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), t.requests());
        assert_eq!(back.universe(), t.universe());
    }

    #[test]
    fn written_form_is_stable() {
        let u = Universe::uniform(1, 2);
        let t = Trace::from_page_indices(&u, &[1, 0]);
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let mut want = b"occbin01".to_vec();
        want.extend_from_slice(&1u32.to_le_bytes()); // users
        want.extend_from_slice(&2u32.to_le_bytes()); // pages
        want.extend_from_slice(&0u32.to_le_bytes()); // owner of p0
        want.extend_from_slice(&0u32.to_le_bytes()); // owner of p1
        want.extend_from_slice(&2u64.to_le_bytes()); // requests
        want.extend_from_slice(&1u32.to_le_bytes());
        want.extend_from_slice(&0u32.to_le_bytes());
        // Checksum footer over the request-id bytes only.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        want.extend_from_slice(&BINARY_TRACE_FOOTER_MAGIC);
        want.extend_from_slice(&crate::checksum::crc32(&payload).to_le_bytes());
        assert_eq!(buf, want);
    }

    #[test]
    fn incremental_writer_matches_whole_trace_writer() {
        let t = sample();
        let mut whole = Vec::new();
        write_trace_binary(&t, &mut whole).unwrap();

        let mut w = BinaryTraceWriter::new(t.universe().clone(), Cursor::new(Vec::new())).unwrap();
        for &r in t.requests() {
            w.push(r).unwrap();
        }
        let streamed = w.finish().unwrap().into_inner();
        assert_eq!(streamed, whole);
    }

    #[test]
    fn incremental_writer_validates_requests() {
        let u = Universe::uniform(2, 2);
        let mut w = BinaryTraceWriter::new(u.clone(), Cursor::new(Vec::new())).unwrap();
        let err = w
            .push(Request {
                page: PageId(99),
                user: UserId(0),
            })
            .unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
        let err = w
            .push(Request {
                page: PageId(0),
                user: UserId(1),
            })
            .unwrap_err();
        assert!(err.to_string().contains("does not own"));
    }

    #[test]
    fn streaming_reader_replays_identically() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let mut src = BinaryTraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(src.total_requests(), t.len() as u64);
        let ctx_universe = src.universe().clone();
        let cache = crate::cache::CacheSet::new(1, ctx_universe.num_pages());
        let stats = crate::stats::SimStats::new(ctx_universe.num_users());
        let ctx = EngineCtx {
            time: 0,
            cache: &cache,
            stats: &stats,
            universe: &ctx_universe,
        };
        let mut got = Vec::new();
        while let Some(r) = src.next_request(&ctx) {
            got.push(r);
        }
        assert_eq!(got.as_slice(), t.requests());
        src.finish().unwrap();
    }

    #[test]
    fn truncated_header_is_a_parse_error() {
        for cut in [0usize, 4, 10, 14] {
            let t = sample();
            let mut buf = Vec::new();
            write_trace_binary(&t, &mut buf).unwrap();
            buf.truncate(cut);
            let err = read_trace_binary(buf.as_slice()).unwrap_err();
            assert!(matches!(err, TraceIoError::Parse(_)), "cut={cut}: {err}");
        }
    }

    #[test]
    fn truncated_request_stream_is_a_parse_error() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        // Cut into the last request, past the 12-byte footer.
        buf.truncate(buf.len() - 12 - 3);
        let err = read_trace_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        // The streaming reader parks the same error instead of panicking.
        let mut src = BinaryTraceReader::new(buf.as_slice()).unwrap();
        let u = src.universe().clone();
        let cache = crate::cache::CacheSet::new(1, u.num_pages());
        let stats = crate::stats::SimStats::new(u.num_users());
        let ctx = EngineCtx {
            time: 0,
            cache: &cache,
            stats: &stats,
            universe: &u,
        };
        while src.next_request(&ctx).is_some() {}
        assert!(matches!(src.finish(), Err(TraceIoError::Parse(_))));
    }

    #[test]
    fn corrupt_fields_are_parse_errors() {
        let t = sample();
        let mut good = Vec::new();
        write_trace_binary(&t, &mut good).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_trace_binary(bad.as_slice()),
            Err(TraceIoError::Parse(_))
        ));

        // Zero users.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&0u32.to_le_bytes());
        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("at least one user"));

        // Owner out of range.
        let mut bad = good.clone();
        bad[16..20].copy_from_slice(&7u32.to_le_bytes());
        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("owner 7 out of range"));

        // Page out of range in the request stream (the last request sits
        // just before the 12-byte footer).
        let mut bad = good.clone();
        let last = bad.len() - 12 - 4;
        bad[last..last + 4].copy_from_slice(&9u32.to_le_bytes());
        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("page 9 out of range"));
    }

    fn ctx_for<'a>(
        u: &'a Universe,
        cache: &'a crate::cache::CacheSet,
        stats: &'a crate::stats::SimStats,
    ) -> EngineCtx<'a> {
        EngineCtx {
            time: 0,
            cache,
            stats,
            universe: u,
        }
    }

    #[test]
    fn legacy_trace_without_footer_stays_accepted() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 12); // exactly what an old writer produced
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), t.requests());

        let mut src = BinaryTraceReader::new(buf.as_slice()).unwrap();
        let u = src.universe().clone();
        let cache = crate::cache::CacheSet::new(1, u.num_pages());
        let stats = crate::stats::SimStats::new(u.num_users());
        let ctx = ctx_for(&u, &cache, &stats);
        let mut served = 0;
        while src.next_request(&ctx).is_some() {
            served += 1;
        }
        assert_eq!(served, t.len());
        src.finish().unwrap();
    }

    #[test]
    fn flipped_payload_byte_fails_the_footer_checksum() {
        let t = sample();
        let mut bad = Vec::new();
        write_trace_binary(&t, &mut bad).unwrap();
        // Swap the first requested page (0) for another in-range page:
        // every structural validation still passes, only the CRC can
        // tell the trace was corrupted.
        let first_req = bad.len() - 12 - 4 * t.len();
        bad[first_req..first_req + 4].copy_from_slice(&1u32.to_le_bytes());

        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("footer checksum mismatch"),
            "{err}"
        );

        // The streaming reader parks the same error at end of stream.
        let mut src = BinaryTraceReader::new(bad.as_slice()).unwrap();
        let u = src.universe().clone();
        let cache = crate::cache::CacheSet::new(1, u.num_pages());
        let stats = crate::stats::SimStats::new(u.num_users());
        let ctx = ctx_for(&u, &cache, &stats);
        while src.next_request(&ctx).is_some() {}
        let err = src.finish().unwrap_err();
        assert!(
            err.to_string().contains("footer checksum mismatch"),
            "{err}"
        );
    }

    #[test]
    fn truncated_footer_is_a_parse_error() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3); // payload intact, footer cut short
        let err = read_trace_binary(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("EOF in the footer checksum"),
            "{err}"
        );
    }

    #[test]
    fn seek_forward_matches_pull_and_discard() {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..50).map(|i| (i * 7) % 6).collect();
        let t = Trace::from_page_indices(&u, &pages);
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let cache = crate::cache::CacheSet::new(1, u.num_pages());
        let stats = crate::stats::SimStats::new(u.num_users());
        let ctx = ctx_for(&u, &cache, &stats);
        for skip in [0u64, 1, 7, 49, 50, 80] {
            let mut pulled = BinaryTraceReader::new(buf.as_slice()).unwrap();
            for _ in 0..skip.min(50) {
                pulled.next_request(&ctx);
            }
            let mut sought = BinaryTraceReader::new(buf.as_slice()).unwrap();
            sought.seek_forward(skip);
            loop {
                let a = pulled.next_request(&ctx);
                let b = sought.next_request(&ctx);
                assert_eq!(a, b, "skip={skip}");
                if a.is_none() {
                    break;
                }
            }
            // Both paths consumed the payload; the footer must verify.
            pulled.finish().unwrap();
            sought.finish().unwrap();
        }
    }

    #[test]
    fn io_failure_mid_stream_stays_an_io_error() {
        use std::io::{self};

        struct FailAfter {
            data: Vec<u8>,
            pos: usize,
        }
        impl Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos < self.data.len() {
                    let n = buf.len().min(self.data.len() - self.pos);
                    buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                    self.pos += n;
                    Ok(n)
                } else {
                    Err(io::Error::other("disk on fire"))
                }
            }
        }

        let t = sample();
        let mut data = Vec::new();
        write_trace_binary(&t, &mut data).unwrap();
        data.truncate(data.len() - 4);
        let err = read_trace_binary(FailAfter { data, pos: 0 }).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)), "got {err}");
    }

    #[test]
    fn auto_detect_reads_both_formats() {
        let t = sample();
        let mut bin = Vec::new();
        write_trace_binary(&t, &mut bin).unwrap();
        let mut text = Vec::new();
        crate::textio::write_trace(&t, &mut text).unwrap();

        let from_bin = read_trace_auto(std::io::BufReader::new(bin.as_slice())).unwrap();
        let from_text = read_trace_auto(std::io::BufReader::new(text.as_slice())).unwrap();
        assert_eq!(from_bin.requests(), t.requests());
        assert_eq!(from_text.requests(), t.requests());
        assert_eq!(from_bin.universe(), from_text.universe());

        // Neither format: falls through to the text parser's error.
        let err = read_trace_auto(std::io::BufReader::new(&b"garbage"[..])).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
    }

    #[test]
    fn empty_trace_round_trips() {
        let u = Universe::single_user(3);
        let t = Trace::from_page_indices(&u, &[]);
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.universe(), t.universe());
    }

    #[test]
    fn buffered_next_run_matches_scalar() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let mut src = BinaryTraceReader::new(buf.as_slice()).unwrap();
        let mut got = Vec::new();
        while let Some(run) = src.next_run(2) {
            got.extend_from_slice(run);
        }
        assert_eq!(got.as_slice(), t.requests());
        src.finish().unwrap();
    }

    /// Write `bytes` to a fresh temp file and return its path.
    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("occ-binio-unit-{name}-{}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[cfg(all(unix, target_endian = "little"))]
    mod zero_copy {
        use super::*;

        fn drain_pages(src: &mut MmapTraceSource) -> Vec<Request> {
            let universe = src.universe().clone();
            let mut got = Vec::new();
            while let Some(run) = src.next_page_run(3) {
                for &page in run {
                    got.push(Request {
                        page,
                        user: universe.owner(page),
                    });
                }
            }
            got
        }

        #[test]
        fn mmap_source_replays_identically() {
            let t = sample();
            let mut buf = Vec::new();
            write_trace_binary(&t, &mut buf).unwrap();
            let path = tmp_file("mmap-replay", &buf);
            let mut src = MmapTraceSource::open(&path).unwrap();
            assert_eq!(src.total_requests(), t.len() as u64);
            assert_eq!(drain_pages(&mut src).as_slice(), t.requests());
            src.finish().unwrap();
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn mmap_scalar_and_seek_match_buffered() {
            let u = Universe::uniform(2, 3);
            let pages: Vec<u32> = (0..50).map(|i| (i * 7) % 6).collect();
            let t = Trace::from_page_indices(&u, &pages);
            let mut buf = Vec::new();
            write_trace_binary(&t, &mut buf).unwrap();
            let path = tmp_file("mmap-seek", &buf);
            let cache = crate::cache::CacheSet::new(1, u.num_pages());
            let stats = crate::stats::SimStats::new(u.num_users());
            let ctx = ctx_for(&u, &cache, &stats);
            for skip in [0u64, 1, 49, 50, 80] {
                let mut mapped = MmapTraceSource::open(&path).unwrap();
                mapped.seek_forward(skip);
                let mut buffered = BinaryTraceReader::new(buf.as_slice()).unwrap();
                buffered.seek_forward(skip);
                loop {
                    let a = mapped.next_request(&ctx);
                    let b = buffered.next_request(&ctx);
                    assert_eq!(a, b, "skip={skip}");
                    if a.is_none() {
                        break;
                    }
                }
                mapped.finish().unwrap();
                buffered.finish().unwrap();
            }
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn mmap_parks_truncation_and_checksum_errors() {
            let t = sample();
            let mut good = Vec::new();
            write_trace_binary(&t, &mut good).unwrap();

            // Payload cut mid-request.
            let mut bad = good.clone();
            bad.truncate(bad.len() - 12 - 3);
            let path = tmp_file("mmap-trunc", &bad);
            let mut src = MmapTraceSource::open(&path).unwrap();
            let served = drain_pages(&mut src).len();
            assert!(served < t.len());
            let err = src.finish().unwrap_err();
            assert!(err.to_string().contains("truncated"), "{err}");
            std::fs::remove_file(&path).ok();

            // In-range page swap: only the footer checksum can tell.
            let mut bad = good.clone();
            let first_req = bad.len() - 12 - 4 * t.len();
            bad[first_req..first_req + 4].copy_from_slice(&1u32.to_le_bytes());
            let path = tmp_file("mmap-crc", &bad);
            let mut src = MmapTraceSource::open(&path).unwrap();
            assert_eq!(drain_pages(&mut src).len(), t.len());
            let err = src.finish().unwrap_err();
            assert!(
                err.to_string().contains("footer checksum mismatch"),
                "{err}"
            );
            std::fs::remove_file(&path).ok();

            // Legacy trailer-less form stays accepted, as on the
            // buffered path.
            let mut legacy = good.clone();
            legacy.truncate(legacy.len() - 12);
            let path = tmp_file("mmap-legacy", &legacy);
            let mut src = MmapTraceSource::open(&path).unwrap();
            assert_eq!(drain_pages(&mut src).len(), t.len());
            src.finish().unwrap();
            std::fs::remove_file(&path).ok();

            // Out-of-range page: same report as the buffered reader.
            let mut bad = good.clone();
            let last = bad.len() - 12 - 4;
            bad[last..last + 4].copy_from_slice(&9u32.to_le_bytes());
            let path = tmp_file("mmap-range", &bad);
            let mut src = MmapTraceSource::open(&path).unwrap();
            let _ = drain_pages(&mut src);
            let err = src.finish().unwrap_err();
            assert!(err.to_string().contains("page 9 out of range"), "{err}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn binary_source_picks_a_strategy_per_format() {
        let t = sample();

        let mut v1 = Vec::new();
        write_trace_binary(&t, &mut v1).unwrap();
        let v1_path = tmp_file("strategy-v1", &v1);
        let src = BinarySource::open(&v1_path).unwrap();
        if cfg!(all(unix, target_endian = "little")) {
            assert_eq!(src.strategy(), "mmap");
        } else {
            assert_eq!(src.strategy(), "buffered");
        }
        assert_eq!(src.total_requests(), t.len() as u64);

        let mut v2 = Vec::new();
        crate::binio2::write_trace_binary_v2(&t, &mut v2).unwrap();
        let v2_path = tmp_file("strategy-v2", &v2);
        let src = BinarySource::open(&v2_path).unwrap();
        assert_eq!(src.strategy(), "packed");
        assert_eq!(src.total_requests(), t.len() as u64);

        // All strategies replay the same requests.
        for path in [&v1_path, &v2_path] {
            let mut src = BinarySource::open(path).unwrap();
            let universe = RequestSource::universe(&src).clone();
            let mut got: Vec<Request> = Vec::new();
            loop {
                if let Some(pages) = src.next_page_run(7) {
                    for &page in pages {
                        got.push(Request {
                            page,
                            user: universe.owner(page),
                        });
                    }
                } else if let Some(run) = src.next_run(7) {
                    got.extend_from_slice(run);
                } else {
                    break;
                }
            }
            assert_eq!(got.as_slice(), t.requests(), "strategy {}", src.strategy());
            src.finish().unwrap();
        }

        let garbage_path = tmp_file("strategy-garbage", b"not a trace at all");
        let Err(err) = BinarySource::open(&garbage_path) else {
            panic!("garbage opened successfully");
        };
        assert!(matches!(err, TraceIoError::Parse(_)), "{err}");

        for p in [v1_path, v2_path, garbage_path] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn auto_detect_reads_packed_traces_too() {
        let t = sample();
        let mut v2 = Vec::new();
        crate::binio2::write_trace_binary_v2(&t, &mut v2).unwrap();
        let back = read_trace_auto(std::io::BufReader::new(v2.as_slice())).unwrap();
        assert_eq!(back.requests(), t.requests());
        assert_eq!(back.universe(), t.universe());
    }
}
