//! Compact binary trace serialization.
//!
//! The text format ([`crate::textio`]) is the diffable, versionable
//! interchange form; this module is its high-volume twin for traces too
//! large to hold as text (or in memory at all). The layout is fixed-width
//! little-endian:
//!
//! ```text
//! offset  size            field
//! 0       8               magic  b"occbin01"
//! 8       4               num_users   (u32, > 0)
//! 12      4               num_pages   (u32)
//! 16      4 * num_pages   owner table (u32 per page, < num_users)
//! …       8               num_requests (u64)
//! …       4 * num_requests  requested page ids (u32, < num_pages)
//! …       8               footer magic b"occsum01"   (optional)
//! …       4               crc32 of the request-id bytes (u32)
//! ```
//!
//! Requests carry only the page id — the owner is implied by the owner
//! table, exactly as in the text format. Readers and writers move data in
//! bounded chunks, so a billion-request trace streams from disk without
//! full residency: [`BinaryTraceReader`] is a
//! [`RequestSource`](crate::source::RequestSource) whose memory footprint
//! is the owner table plus one chunk, independent of the request count.
//!
//! The footer is a torn-write guard: both writers append it, and both
//! readers verify it when present (a payload whose CRC-32 disagrees with
//! the footer is a parse error, exit 4 at the CLI). Traces written before
//! the footer existed have nothing after the last request and stay
//! accepted. The checksum covers the request-id bytes only — the header's
//! request count is patched after the payload by the incremental writer,
//! so including it would force a second pass over the file.

use crate::checksum::Crc32;
use crate::engine::EngineCtx;
use crate::ids::{PageId, UserId};
use crate::source::{RequestSource, SeekableSource};
use crate::textio::TraceIoError;
use crate::trace::{Request, Trace, TraceBuilder, Universe};
use std::io::{BufRead, Read, Seek, SeekFrom, Write};

/// First eight bytes of every binary trace.
pub const BINARY_TRACE_MAGIC: [u8; 8] = *b"occbin01";

/// Magic introducing the optional checksum footer after the last request.
pub const BINARY_TRACE_FOOTER_MAGIC: [u8; 8] = *b"occsum01";

/// Page ids per chunk moved by the streaming reader/writer: 64 Ki ids =
/// 256 KiB per transfer, large enough to amortize syscalls, small enough
/// to keep residency trivially bounded.
const CHUNK_IDS: usize = 64 * 1024;

fn parse_err(msg: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse(msg.into())
}

/// Classify an I/O failure while a fixed-width field is being read:
/// running out of bytes mid-field is a malformed (truncated) file, not an
/// environment failure.
fn classify(e: std::io::Error, what: &str) -> TraceIoError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        parse_err(format!("truncated binary trace: unexpected EOF in {what}"))
    } else {
        TraceIoError::Io(e)
    }
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> Result<u32, TraceIoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(|e| classify(e, what))?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, TraceIoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(|e| classify(e, what))?;
    Ok(u64::from_le_bytes(buf))
}

/// Read the magic + universe header, leaving the reader positioned at the
/// request count.
fn read_universe<R: Read>(r: &mut R) -> Result<Universe, TraceIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| classify(e, "the magic"))?;
    if magic != BINARY_TRACE_MAGIC {
        return Err(parse_err(format!(
            "bad magic {magic:?}, expected {BINARY_TRACE_MAGIC:?}"
        )));
    }
    let num_users = read_u32(r, "the user count")?;
    if num_users == 0 {
        return Err(parse_err("a trace needs at least one user"));
    }
    let num_pages = read_u32(r, "the page count")? as usize;
    // Read the owner table chunkwise: the capacity hint is capped so a
    // corrupt header cannot demand an arbitrary allocation up front.
    let mut owners: Vec<UserId> = Vec::with_capacity(num_pages.min(CHUNK_IDS));
    let mut buf = vec![0u8; 4 * CHUNK_IDS];
    let mut remaining = num_pages;
    while remaining > 0 {
        let take = remaining.min(CHUNK_IDS);
        let bytes = &mut buf[..4 * take];
        r.read_exact(bytes)
            .map_err(|e| classify(e, "the owner table"))?;
        for ids in bytes.chunks_exact(4) {
            let u = u32::from_le_bytes(ids.try_into().expect("4-byte chunk"));
            if u >= num_users {
                return Err(parse_err(format!("owner {u} out of range")));
            }
            owners.push(UserId(u));
        }
        remaining -= take;
    }
    Ok(Universe::new(num_users, owners))
}

/// After the last request, look for the optional checksum footer and
/// verify it against the CRC-32 of the request-id bytes just consumed.
/// Zero bytes after the payload is a legacy (pre-footer) trace and is
/// accepted; a footer magic followed by too few bytes is truncation; a
/// checksum disagreement is corruption. Trailing bytes that are not the
/// footer magic are ignored, as they were before the footer existed.
fn check_footer<R: Read>(r: &mut R, payload_crc: u32) -> Result<(), TraceIoError> {
    let mut foot = [0u8; 12];
    let mut got = 0usize;
    while got < foot.len() {
        match r.read(&mut foot[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TraceIoError::Io(e)),
        }
    }
    if got >= 8 && foot[..8] == BINARY_TRACE_FOOTER_MAGIC {
        if got < 12 {
            return Err(parse_err(
                "truncated binary trace: unexpected EOF in the footer checksum",
            ));
        }
        let want = u32::from_le_bytes(foot[8..12].try_into().expect("4-byte slice"));
        if want != payload_crc {
            return Err(parse_err(format!(
                "footer checksum mismatch: footer says crc32 {want:08x}, request stream hashes \
                 to {payload_crc:08x} (corrupt or torn trace)"
            )));
        }
    }
    Ok(())
}

/// Write an entire in-memory `trace` in the binary format.
pub fn write_trace_binary<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    let universe = trace.universe();
    w.write_all(&BINARY_TRACE_MAGIC)?;
    w.write_all(&universe.num_users().to_le_bytes())?;
    w.write_all(&universe.num_pages().to_le_bytes())?;
    let mut buf = Vec::with_capacity(4 * CHUNK_IDS);
    for chunk in universe.owners().chunks(CHUNK_IDS) {
        buf.clear();
        for &u in chunk {
            buf.extend_from_slice(&u.0.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut crc = Crc32::new();
    for chunk in trace.requests().chunks(CHUNK_IDS) {
        buf.clear();
        for r in chunk {
            buf.extend_from_slice(&r.page.0.to_le_bytes());
        }
        crc.update(&buf);
        w.write_all(&buf)?;
    }
    w.write_all(&BINARY_TRACE_FOOTER_MAGIC)?;
    w.write_all(&crc.value().to_le_bytes())?;
    Ok(())
}

/// Read a whole binary trace into memory. For traces that do not fit,
/// use [`BinaryTraceReader`] and stream instead.
pub fn read_trace_binary<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let universe = read_universe(&mut r)?;
    let num_pages = universe.num_pages();
    let count = read_u64(&mut r, "the request count")?;
    let mut builder = TraceBuilder::new(universe);
    let mut buf = vec![0u8; 4 * CHUNK_IDS];
    let mut remaining = count;
    let mut crc = Crc32::new();
    while remaining > 0 {
        let take = (remaining as usize).min(CHUNK_IDS);
        let bytes = &mut buf[..4 * take];
        r.read_exact(bytes)
            .map_err(|e| classify(e, "the request stream"))?;
        crc.update(bytes);
        for ids in bytes.chunks_exact(4) {
            let page = u32::from_le_bytes(ids.try_into().expect("4-byte chunk"));
            if page >= num_pages {
                return Err(parse_err(format!("page {page} out of range")));
            }
            builder.push(PageId(page));
        }
        remaining -= take as u64;
    }
    check_footer(&mut r, crc.value())?;
    Ok(builder.build())
}

/// Read a trace in either format, sniffing the first bytes: binary if
/// they begin with [`BINARY_TRACE_MAGIC`], text otherwise.
pub fn read_trace_auto<R: BufRead>(mut r: R) -> Result<Trace, TraceIoError> {
    let head = r.fill_buf()?;
    // Compare against however much of the prefix is available — a file
    // shorter than the magic cannot be binary.
    let looks_binary = head.len() >= BINARY_TRACE_MAGIC.len()
        && head[..BINARY_TRACE_MAGIC.len()] == BINARY_TRACE_MAGIC;
    if looks_binary {
        read_trace_binary(r)
    } else {
        crate::textio::read_trace(r)
    }
}

/// Incremental binary-trace writer for streams whose length is not known
/// up front: the request count is written as a placeholder and patched on
/// [`finish`](Self::finish) (which is why the sink must be [`Seek`]).
pub struct BinaryTraceWriter<W: Write + Seek> {
    sink: W,
    universe: Universe,
    count_offset: u64,
    written: u64,
    buf: Vec<u8>,
    crc: Crc32,
}

impl<W: Write + Seek> BinaryTraceWriter<W> {
    /// Write the header for `universe` and return a writer ready to
    /// accept requests.
    pub fn new(universe: Universe, mut sink: W) -> Result<Self, TraceIoError> {
        sink.write_all(&BINARY_TRACE_MAGIC)?;
        sink.write_all(&universe.num_users().to_le_bytes())?;
        sink.write_all(&universe.num_pages().to_le_bytes())?;
        let mut buf = Vec::with_capacity(4 * CHUNK_IDS);
        for chunk in universe.owners().chunks(CHUNK_IDS) {
            buf.clear();
            for &u in chunk {
                buf.extend_from_slice(&u.0.to_le_bytes());
            }
            sink.write_all(&buf)?;
        }
        let count_offset = sink.stream_position()?;
        sink.write_all(&0u64.to_le_bytes())?;
        buf.clear();
        Ok(BinaryTraceWriter {
            sink,
            universe,
            count_offset,
            written: 0,
            buf,
            crc: Crc32::new(),
        })
    }

    /// Append one request. Rejects pages outside the universe and owner
    /// claims that disagree with it (the same invariant [`Trace::new`]
    /// enforces, as a typed error instead of a panic).
    pub fn push(&mut self, req: Request) -> Result<(), TraceIoError> {
        match self.universe.try_owner(req.page) {
            None => {
                return Err(parse_err(format!(
                    "request {}: page {} outside the universe",
                    self.written, req.page
                )))
            }
            Some(owner) if owner != req.user => {
                return Err(parse_err(format!(
                    "request {}: {} does not own {}",
                    self.written, req.user, req.page
                )))
            }
            Some(_) => {}
        }
        let id = req.page.0.to_le_bytes();
        self.crc.update(&id);
        self.buf.extend_from_slice(&id);
        if self.buf.len() >= 4 * CHUNK_IDS {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.written += 1;
        Ok(())
    }

    /// Flush buffered requests, append the checksum footer, patch the
    /// request count into the header, and return the sink. Dropping the
    /// writer without calling this leaves a file whose header promises
    /// zero requests.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        if !self.buf.is_empty() {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.sink.write_all(&BINARY_TRACE_FOOTER_MAGIC)?;
        self.sink.write_all(&self.crc.value().to_le_bytes())?;
        let end = self.sink.stream_position()?;
        self.sink.seek(SeekFrom::Start(self.count_offset))?;
        self.sink.write_all(&self.written.to_le_bytes())?;
        self.sink.seek(SeekFrom::Start(end))?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Chunked binary-trace reader that serves as a
/// [`RequestSource`]: requests stream from the underlying reader
/// `CHUNK_IDS` at a time, so memory stays bounded regardless of how many
/// requests the file holds.
///
/// [`RequestSource::next_request`] has no error channel, so a mid-stream
/// failure (truncation, disk error, out-of-range page) ends the stream
/// early and parks the error in [`error`](Self::error) — run loops should
/// check it (or call [`finish`](Self::finish)) after the source runs dry.
pub struct BinaryTraceReader<R: Read> {
    reader: R,
    universe: Universe,
    total: u64,
    served: u64,
    chunk: Vec<Request>,
    /// Next index to serve from `chunk`.
    pos: usize,
    error: Option<TraceIoError>,
    crc: Crc32,
    footer_checked: bool,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Read the header (universe + request count) and return a source
    /// positioned at the first request.
    pub fn new(mut reader: R) -> Result<Self, TraceIoError> {
        let universe = read_universe(&mut reader)?;
        let total = read_u64(&mut reader, "the request count")?;
        Ok(BinaryTraceReader {
            reader,
            universe,
            total,
            served: 0,
            chunk: Vec::new(),
            pos: 0,
            error: None,
            crc: Crc32::new(),
            footer_checked: false,
        })
    }

    /// Total requests promised by the header.
    pub fn total_requests(&self) -> u64 {
        self.total
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    /// Tear down the source; returns the parked error if the stream
    /// ended early, so callers can surface truncation with a `?`.
    pub fn finish(self) -> Result<(), TraceIoError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn refill(&mut self) -> Result<bool, TraceIoError> {
        // `served` counts requests handed out; buffered-but-unserved
        // requests must be included when computing what is left on disk.
        let buffered = (self.chunk.len() - self.pos) as u64;
        let remaining = self.total - self.served - buffered;
        if remaining == 0 {
            if !self.footer_checked {
                self.footer_checked = true;
                check_footer(&mut self.reader, self.crc.value())?;
            }
            return Ok(false);
        }
        let take = (remaining as usize).min(CHUNK_IDS);
        let mut bytes = vec![0u8; 4 * take];
        self.reader
            .read_exact(&mut bytes)
            .map_err(|e| classify(e, "the request stream"))?;
        self.crc.update(&bytes);
        self.chunk.clear();
        for ids in bytes.chunks_exact(4) {
            let page = u32::from_le_bytes(ids.try_into().expect("4-byte chunk"));
            match self.universe.try_owner(PageId(page)) {
                Some(user) => self.chunk.push(Request {
                    page: PageId(page),
                    user,
                }),
                None => return Err(parse_err(format!("page {page} out of range"))),
            }
        }
        self.pos = 0;
        Ok(true)
    }
}

impl<R: Read> RequestSource for BinaryTraceReader<R> {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
        if self.error.is_some() {
            return None;
        }
        if self.pos >= self.chunk.len() {
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
        let req = self.chunk[self.pos];
        self.pos += 1;
        self.served += 1;
        Some(req)
    }
}

impl<R: Read> SeekableSource for BinaryTraceReader<R> {
    /// Decode-and-discard fast-forward through the same chunked refill
    /// path as serving, so validation (page range, truncation, footer
    /// checksum) and the running CRC see exactly the bytes a full
    /// replay would. Errors park in [`error`](Self::error) as usual.
    fn seek_forward(&mut self, n: u64) {
        let mut remaining = n;
        while remaining > 0 {
            if self.error.is_some() {
                return;
            }
            let avail = (self.chunk.len() - self.pos) as u64;
            if avail == 0 {
                match self.refill() {
                    Ok(true) => continue,
                    Ok(false) => return,
                    Err(e) => {
                        self.error = Some(e);
                        return;
                    }
                }
            }
            let take = avail.min(remaining);
            self.pos += take as usize;
            self.served += take;
            remaining -= take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Trace {
        let u = Universe::uniform(2, 2);
        Trace::from_page_indices(&u, &[0, 2, 1, 3, 0])
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), t.requests());
        assert_eq!(back.universe(), t.universe());
    }

    #[test]
    fn written_form_is_stable() {
        let u = Universe::uniform(1, 2);
        let t = Trace::from_page_indices(&u, &[1, 0]);
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let mut want = b"occbin01".to_vec();
        want.extend_from_slice(&1u32.to_le_bytes()); // users
        want.extend_from_slice(&2u32.to_le_bytes()); // pages
        want.extend_from_slice(&0u32.to_le_bytes()); // owner of p0
        want.extend_from_slice(&0u32.to_le_bytes()); // owner of p1
        want.extend_from_slice(&2u64.to_le_bytes()); // requests
        want.extend_from_slice(&1u32.to_le_bytes());
        want.extend_from_slice(&0u32.to_le_bytes());
        // Checksum footer over the request-id bytes only.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        want.extend_from_slice(&BINARY_TRACE_FOOTER_MAGIC);
        want.extend_from_slice(&crate::checksum::crc32(&payload).to_le_bytes());
        assert_eq!(buf, want);
    }

    #[test]
    fn incremental_writer_matches_whole_trace_writer() {
        let t = sample();
        let mut whole = Vec::new();
        write_trace_binary(&t, &mut whole).unwrap();

        let mut w = BinaryTraceWriter::new(t.universe().clone(), Cursor::new(Vec::new())).unwrap();
        for &r in t.requests() {
            w.push(r).unwrap();
        }
        let streamed = w.finish().unwrap().into_inner();
        assert_eq!(streamed, whole);
    }

    #[test]
    fn incremental_writer_validates_requests() {
        let u = Universe::uniform(2, 2);
        let mut w = BinaryTraceWriter::new(u.clone(), Cursor::new(Vec::new())).unwrap();
        let err = w
            .push(Request {
                page: PageId(99),
                user: UserId(0),
            })
            .unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
        let err = w
            .push(Request {
                page: PageId(0),
                user: UserId(1),
            })
            .unwrap_err();
        assert!(err.to_string().contains("does not own"));
    }

    #[test]
    fn streaming_reader_replays_identically() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let mut src = BinaryTraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(src.total_requests(), t.len() as u64);
        let ctx_universe = src.universe().clone();
        let cache = crate::cache::CacheSet::new(1, ctx_universe.num_pages());
        let stats = crate::stats::SimStats::new(ctx_universe.num_users());
        let ctx = EngineCtx {
            time: 0,
            cache: &cache,
            stats: &stats,
            universe: &ctx_universe,
        };
        let mut got = Vec::new();
        while let Some(r) = src.next_request(&ctx) {
            got.push(r);
        }
        assert_eq!(got.as_slice(), t.requests());
        src.finish().unwrap();
    }

    #[test]
    fn truncated_header_is_a_parse_error() {
        for cut in [0usize, 4, 10, 14] {
            let t = sample();
            let mut buf = Vec::new();
            write_trace_binary(&t, &mut buf).unwrap();
            buf.truncate(cut);
            let err = read_trace_binary(buf.as_slice()).unwrap_err();
            assert!(matches!(err, TraceIoError::Parse(_)), "cut={cut}: {err}");
        }
    }

    #[test]
    fn truncated_request_stream_is_a_parse_error() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        // Cut into the last request, past the 12-byte footer.
        buf.truncate(buf.len() - 12 - 3);
        let err = read_trace_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        // The streaming reader parks the same error instead of panicking.
        let mut src = BinaryTraceReader::new(buf.as_slice()).unwrap();
        let u = src.universe().clone();
        let cache = crate::cache::CacheSet::new(1, u.num_pages());
        let stats = crate::stats::SimStats::new(u.num_users());
        let ctx = EngineCtx {
            time: 0,
            cache: &cache,
            stats: &stats,
            universe: &u,
        };
        while src.next_request(&ctx).is_some() {}
        assert!(matches!(src.finish(), Err(TraceIoError::Parse(_))));
    }

    #[test]
    fn corrupt_fields_are_parse_errors() {
        let t = sample();
        let mut good = Vec::new();
        write_trace_binary(&t, &mut good).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_trace_binary(bad.as_slice()),
            Err(TraceIoError::Parse(_))
        ));

        // Zero users.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&0u32.to_le_bytes());
        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("at least one user"));

        // Owner out of range.
        let mut bad = good.clone();
        bad[16..20].copy_from_slice(&7u32.to_le_bytes());
        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("owner 7 out of range"));

        // Page out of range in the request stream (the last request sits
        // just before the 12-byte footer).
        let mut bad = good.clone();
        let last = bad.len() - 12 - 4;
        bad[last..last + 4].copy_from_slice(&9u32.to_le_bytes());
        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("page 9 out of range"));
    }

    fn ctx_for<'a>(
        u: &'a Universe,
        cache: &'a crate::cache::CacheSet,
        stats: &'a crate::stats::SimStats,
    ) -> EngineCtx<'a> {
        EngineCtx {
            time: 0,
            cache,
            stats,
            universe: u,
        }
    }

    #[test]
    fn legacy_trace_without_footer_stays_accepted() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 12); // exactly what an old writer produced
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), t.requests());

        let mut src = BinaryTraceReader::new(buf.as_slice()).unwrap();
        let u = src.universe().clone();
        let cache = crate::cache::CacheSet::new(1, u.num_pages());
        let stats = crate::stats::SimStats::new(u.num_users());
        let ctx = ctx_for(&u, &cache, &stats);
        let mut served = 0;
        while src.next_request(&ctx).is_some() {
            served += 1;
        }
        assert_eq!(served, t.len());
        src.finish().unwrap();
    }

    #[test]
    fn flipped_payload_byte_fails_the_footer_checksum() {
        let t = sample();
        let mut bad = Vec::new();
        write_trace_binary(&t, &mut bad).unwrap();
        // Swap the first requested page (0) for another in-range page:
        // every structural validation still passes, only the CRC can
        // tell the trace was corrupted.
        let first_req = bad.len() - 12 - 4 * t.len();
        bad[first_req..first_req + 4].copy_from_slice(&1u32.to_le_bytes());

        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("footer checksum mismatch"),
            "{err}"
        );

        // The streaming reader parks the same error at end of stream.
        let mut src = BinaryTraceReader::new(bad.as_slice()).unwrap();
        let u = src.universe().clone();
        let cache = crate::cache::CacheSet::new(1, u.num_pages());
        let stats = crate::stats::SimStats::new(u.num_users());
        let ctx = ctx_for(&u, &cache, &stats);
        while src.next_request(&ctx).is_some() {}
        let err = src.finish().unwrap_err();
        assert!(
            err.to_string().contains("footer checksum mismatch"),
            "{err}"
        );
    }

    #[test]
    fn truncated_footer_is_a_parse_error() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3); // payload intact, footer cut short
        let err = read_trace_binary(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("EOF in the footer checksum"),
            "{err}"
        );
    }

    #[test]
    fn seek_forward_matches_pull_and_discard() {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..50).map(|i| (i * 7) % 6).collect();
        let t = Trace::from_page_indices(&u, &pages);
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let cache = crate::cache::CacheSet::new(1, u.num_pages());
        let stats = crate::stats::SimStats::new(u.num_users());
        let ctx = ctx_for(&u, &cache, &stats);
        for skip in [0u64, 1, 7, 49, 50, 80] {
            let mut pulled = BinaryTraceReader::new(buf.as_slice()).unwrap();
            for _ in 0..skip.min(50) {
                pulled.next_request(&ctx);
            }
            let mut sought = BinaryTraceReader::new(buf.as_slice()).unwrap();
            sought.seek_forward(skip);
            loop {
                let a = pulled.next_request(&ctx);
                let b = sought.next_request(&ctx);
                assert_eq!(a, b, "skip={skip}");
                if a.is_none() {
                    break;
                }
            }
            // Both paths consumed the payload; the footer must verify.
            pulled.finish().unwrap();
            sought.finish().unwrap();
        }
    }

    #[test]
    fn io_failure_mid_stream_stays_an_io_error() {
        use std::io::{self};

        struct FailAfter {
            data: Vec<u8>,
            pos: usize,
        }
        impl Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos < self.data.len() {
                    let n = buf.len().min(self.data.len() - self.pos);
                    buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                    self.pos += n;
                    Ok(n)
                } else {
                    Err(io::Error::other("disk on fire"))
                }
            }
        }

        let t = sample();
        let mut data = Vec::new();
        write_trace_binary(&t, &mut data).unwrap();
        data.truncate(data.len() - 4);
        let err = read_trace_binary(FailAfter { data, pos: 0 }).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)), "got {err}");
    }

    #[test]
    fn auto_detect_reads_both_formats() {
        let t = sample();
        let mut bin = Vec::new();
        write_trace_binary(&t, &mut bin).unwrap();
        let mut text = Vec::new();
        crate::textio::write_trace(&t, &mut text).unwrap();

        let from_bin = read_trace_auto(std::io::BufReader::new(bin.as_slice())).unwrap();
        let from_text = read_trace_auto(std::io::BufReader::new(text.as_slice())).unwrap();
        assert_eq!(from_bin.requests(), t.requests());
        assert_eq!(from_text.requests(), t.requests());
        assert_eq!(from_bin.universe(), from_text.universe());

        // Neither format: falls through to the text parser's error.
        let err = read_trace_auto(std::io::BufReader::new(&b"garbage"[..])).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
    }

    #[test]
    fn empty_trace_round_trips() {
        let u = Universe::single_user(3);
        let t = Trace::from_page_indices(&u, &[]);
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.universe(), t.universe());
    }
}
