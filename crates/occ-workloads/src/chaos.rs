//! Fault injection for robustness testing.
//!
//! A [`FaultPlan`] is a seeded recipe for corrupting a request stream:
//! each record independently gets an out-of-range page id or a wrong
//! claimed owner with configurable probability, and the stream can be
//! truncated early (the "process died mid-trace" shape). [`ChaosSource`]
//! applies a plan on the fly to any [`RequestSource`];
//! [`FaultPlan::corrupt_trace`] applies it to a fixed [`Trace`] up front,
//! returning raw records for the checked engine paths (the corrupt
//! records cannot live in a `Trace`, which validates its universe).
//!
//! The same seed always produces the same corruption, so chaos runs are
//! reproducible and their fault counts can be asserted exactly.

use occ_sim::engine::EngineCtx;
use occ_sim::source::RequestSource;
use occ_sim::trace::{Request, Trace, Universe};
use occ_sim::{PageId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded recipe for injecting faults into a request stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the corruption RNG.
    pub seed: u64,
    /// Probability that a record's page id is rewritten to one outside
    /// the universe.
    pub page_rate: f64,
    /// Probability that a record's claimed owner is rewritten to disagree
    /// with the universe's owner table (only checked when the page was
    /// left intact).
    pub owner_rate: f64,
    /// Cut the stream off after this many records, if set.
    pub truncate_at: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing (passthrough).
    pub fn clean() -> Self {
        FaultPlan {
            seed: 0,
            page_rate: 0.0,
            owner_rate: 0.0,
            truncate_at: None,
        }
    }

    /// A plan seeded with `seed` and no faults yet; combine with the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::clean()
        }
    }

    /// Set the out-of-range-page injection probability.
    pub fn with_page_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "page rate out of range: {rate}"
        );
        self.page_rate = rate;
        self
    }

    /// Set the wrong-owner injection probability.
    pub fn with_owner_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "owner rate out of range: {rate}"
        );
        self.owner_rate = rate;
        self
    }

    /// Truncate the stream after `n` records.
    pub fn with_truncate_at(mut self, n: usize) -> Self {
        self.truncate_at = Some(n);
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_clean(&self) -> bool {
        self.page_rate == 0.0 && self.owner_rate == 0.0 && self.truncate_at.is_none()
    }

    /// Corrupt a fixed trace, returning the raw (possibly invalid)
    /// records and a tally of what was injected. Feed the records through
    /// the checked engine paths; the plain ones would panic.
    pub fn corrupt_trace(&self, trace: &Trace) -> (Vec<Request>, InjectedFaults) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut injected = InjectedFaults::default();
        let universe = trace.universe();
        let take = self.truncate_at.unwrap_or(usize::MAX);
        if trace.len() > take {
            injected.truncated = true;
        }
        let records = trace
            .requests()
            .iter()
            .take(take)
            .map(|&r| corrupt_record(r, universe, self, &mut rng, &mut injected))
            .collect();
        (records, injected)
    }
}

/// Tally of faults a plan actually injected into a stream (as opposed to
/// the *rates* it was configured with). Tests and reports compare this
/// against the engine's detected [`FaultCounters`].
///
/// [`FaultCounters`]: occ_sim::FaultCounters
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Records whose page id was rewritten out of range.
    pub pages: u64,
    /// Records whose claimed owner was rewritten.
    pub owners: u64,
    /// Whether the stream was cut short.
    pub truncated: bool,
}

impl InjectedFaults {
    /// Total corrupted records.
    pub fn total(&self) -> u64 {
        self.pages.saturating_add(self.owners)
    }
}

/// Corrupt one record per the plan. Each record draws at most two
/// Bernoulli trials in a fixed order, so a given seed yields the same
/// corruption regardless of how the records are produced.
fn corrupt_record(
    mut r: Request,
    universe: &Universe,
    plan: &FaultPlan,
    rng: &mut StdRng,
    injected: &mut InjectedFaults,
) -> Request {
    if plan.page_rate > 0.0 && rng.gen_bool(plan.page_rate) {
        // Out-of-range page: offset past the universe, small enough that
        // the id still prints readably in fault lines.
        r.page = PageId(universe.num_pages() + rng.gen_range(0u32..16) + 1);
        injected.pages += 1;
    } else if plan.owner_rate > 0.0 && rng.gen_bool(plan.owner_rate) {
        // Claimed owner disagrees with the owner table. With one user the
        // only wrong claim is an out-of-range id; with more, rotate to a
        // different real user (exercises quarantine of real tenants).
        let n = universe.num_users();
        r.user = if n <= 1 {
            UserId(n + rng.gen_range(0u32..4))
        } else {
            UserId((r.user.0 + 1 + rng.gen_range(0..n - 1)) % n)
        };
        injected.owners += 1;
    }
    r
}

/// A [`RequestSource`] wrapper that injects faults per a [`FaultPlan`].
///
/// Works over any inner source — fixed traces and adaptive adversaries
/// alike — so the §4 lower-bound sweeps can be chaos-tested too.
pub struct ChaosSource<S> {
    inner: S,
    plan: FaultPlan,
    rng: StdRng,
    emitted: usize,
    injected: InjectedFaults,
}

impl<S: RequestSource> ChaosSource<S> {
    /// Wrap `inner`, corrupting its stream per `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        ChaosSource {
            inner,
            rng: StdRng::seed_from_u64(plan.seed),
            plan,
            emitted: 0,
            injected: InjectedFaults::default(),
        }
    }

    /// What has been injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.injected
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RequestSource> RequestSource for ChaosSource<S> {
    fn universe(&self) -> &Universe {
        self.inner.universe()
    }

    fn next_request(&mut self, ctx: &EngineCtx) -> Option<Request> {
        if let Some(limit) = self.plan.truncate_at {
            if self.emitted >= limit {
                // Only report a truncation if the inner stream had more.
                if self.inner.next_request(ctx).is_some() {
                    self.injected.truncated = true;
                }
                return None;
            }
        }
        let r = self.inner.next_request(ctx)?;
        self.emitted += 1;
        Some(corrupt_record(
            r,
            self.inner.universe(),
            &self.plan,
            &mut self.rng,
            &mut self.injected,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::prelude::*;

    fn trace() -> Trace {
        let u = Universe::uniform(3, 4);
        let pages: Vec<u32> = (0..200).map(|i| (i * 7 + 3) % 12).collect();
        Trace::from_page_indices(&u, &pages)
    }

    #[test]
    fn clean_plan_is_passthrough() {
        let t = trace();
        let (records, injected) = FaultPlan::clean().corrupt_trace(&t);
        assert_eq!(records, t.requests());
        assert_eq!(injected, InjectedFaults::default());
        assert!(FaultPlan::clean().is_clean());
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let t = trace();
        let plan = FaultPlan::seeded(7)
            .with_page_rate(0.2)
            .with_owner_rate(0.1);
        let (a, ia) = plan.corrupt_trace(&t);
        let (b, ib) = plan.corrupt_trace(&t);
        assert_eq!(a, b);
        assert_eq!(ia, ib);
        assert!(ia.total() > 0, "rates this high must inject something");
        let (c, _) = FaultPlan { seed: 8, ..plan }.corrupt_trace(&t);
        assert_ne!(a, c, "a different seed corrupts differently");
    }

    #[test]
    fn injected_faults_are_really_invalid() {
        let t = trace();
        let u = t.universe();
        let plan = FaultPlan::seeded(3)
            .with_page_rate(0.3)
            .with_owner_rate(0.3);
        let (records, injected) = plan.corrupt_trace(&t);
        let bad_pages = records
            .iter()
            .filter(|r| u.try_owner(r.page).is_none())
            .count() as u64;
        let bad_owners = records
            .iter()
            .filter(|r| u.try_owner(r.page).is_some_and(|o| o != r.user))
            .count() as u64;
        assert_eq!(bad_pages, injected.pages);
        assert_eq!(bad_owners, injected.owners);
    }

    #[test]
    fn truncation_cuts_the_stream() {
        let t = trace();
        let (records, injected) = FaultPlan::seeded(0).with_truncate_at(50).corrupt_trace(&t);
        assert_eq!(records.len(), 50);
        assert!(injected.truncated);
        // Truncating past the end is not a truncation.
        let (all, injected) = FaultPlan::seeded(0)
            .with_truncate_at(10_000)
            .corrupt_trace(&t);
        assert_eq!(all.len(), t.len());
        assert!(!injected.truncated);
    }

    #[test]
    fn chaos_source_matches_corrupt_trace() {
        // The streaming wrapper and the up-front corruption draw from the
        // same seeded RNG in the same per-record order, so they agree.
        let t = trace();
        let plan = FaultPlan::seeded(11)
            .with_page_rate(0.25)
            .with_owner_rate(0.15)
            .with_truncate_at(120);
        let (expect, injected_up_front) = plan.corrupt_trace(&t);

        let mut src = ChaosSource::new(TraceSource::new(&t), plan);
        let mut lru = occ_baselines::Lru::new();
        let run = Simulator::new(4)
            .try_run_source_recorded(
                &mut lru,
                &mut src,
                &mut NoopRecorder,
                FaultPolicy::SkipAndCount,
            )
            .unwrap();
        assert_eq!(run.result.steps, expect.len() as u64);
        assert_eq!(src.injected(), injected_up_front);
        assert_eq!(
            run.faults.page_out_of_range + run.faults.owner_mismatch,
            injected_up_front.total(),
            "the engine detects exactly what was injected"
        );
    }

    #[test]
    fn chaos_over_adaptive_source() {
        let u = Universe::uniform(2, 2);
        let mut remaining = 40;
        let inner = AdaptiveSource::new(u, move |cached: &[PageId]| {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            (0..4).map(PageId).find(|p| !cached.contains(p))
        });
        let plan = FaultPlan::seeded(5).with_page_rate(0.5);
        let mut src = ChaosSource::new(inner, plan);
        let mut lru = occ_baselines::Lru::new();
        let run = Simulator::new(2)
            .try_run_source_recorded(
                &mut lru,
                &mut src,
                &mut NoopRecorder,
                FaultPolicy::SkipAndCount,
            )
            .unwrap();
        assert_eq!(run.result.steps, 40);
        assert!(run.faults.page_out_of_range > 0);
        assert_eq!(run.faults.page_out_of_range, src.injected().pages);
    }
}
