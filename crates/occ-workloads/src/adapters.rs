//! Real-trace adapters: key-access CSV logs → replayable request streams.
//!
//! The experiments are driven by synthetic generators by default, but the
//! paper's motivating workloads are real multi-tenant storage traces. This
//! module adapts the two publicly documented CSV shapes to the engine's
//! [`RequestSource`] model:
//!
//! * **MSR-Cambridge style** block I/O logs, one record per line:
//!   `timestamp,hostname,disk,type,offset,size,response_time`. The tenant
//!   is the `hostname.disk` volume; a record covering `size` bytes at
//!   `offset` touches one page per 4 KiB block in `[offset, offset+size)`.
//! * **Twitter-cluster style** cache access logs:
//!   `timestamp,key,key_size,value_size,client_id,operation,ttl`. The
//!   tenant is the anonymized client id; each record touches the one page
//!   named by `key`.
//!
//! Both shapes name pages (and tenants) with *strings*, while the engine
//! wants dense `u32` ids. The adapter interns every distinct key into a
//! [`KeyDict`] in first-seen order — a *recorded* dictionary that can be
//! written next to a converted trace (`occ trace import`), so a page id in
//! a report can always be mapped back to the original key, and a re-import
//! of the same file reproduces the identical id assignment. Page ownership
//! follows the model's single-owner constraint: the first tenant to touch
//! a page owns it for the whole trace.
//!
//! Tenant ids are dense first-seen ids by default; passing
//! `tenants: Some(n)` instead buckets tenant keys into `n` users via a
//! deterministic FNV-1a hash, which is how a trace with thousands of
//! volumes is made to fit a scenario with a handful of SLA classes.
//!
//! [`CsvAdapter`] makes two passes over the file: pass 1 builds the
//! dictionaries, owner table and request count (memory proportional to
//! the number of *distinct* keys, not records); pass 2 streams records as
//! a [`RequestSource`] + [`SeekableSource`] with the same parked-error
//! discipline as the binary readers.

use occ_sim::engine::EngineCtx;
use occ_sim::{PageId, Request, RequestSource, SeekableSource, TraceIoError, Universe, UserId};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// Bytes per cache page when expanding MSR-style byte extents.
pub const MSR_BLOCK_BYTES: u64 = 4096;

/// Upper bound on blocks a single MSR record may expand to; a corrupt
/// `size` field must not demand millions of requests.
const MAX_BLOCKS_PER_RECORD: u64 = 65_536;

/// Which CSV dialect a file speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsvFlavor {
    /// MSR-Cambridge style block I/O: `ts,host,disk,type,offset,size,rt`.
    Msr,
    /// Twitter cache-cluster style: `ts,key,ksize,vsize,client,op,ttl`.
    Twitter,
}

impl CsvFlavor {
    /// Name used in logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            CsvFlavor::Msr => "msr",
            CsvFlavor::Twitter => "twitter",
        }
    }
}

fn parse_err(msg: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse(msg.into())
}

/// Deterministic FNV-1a (64-bit) over a tenant key — the bucketing hash.
/// Stable across runs and platforms by construction (no seed, no
/// pointer-dependent state), which is what replayability requires.
pub fn fnv1a64(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Guess the flavor from one data line. `None` if it matches neither
/// shape.
pub fn sniff_flavor(line: &str) -> Option<CsvFlavor> {
    let f: Vec<&str> = line.split(',').collect();
    if f.len() >= 6 {
        let op = f[3].trim();
        if (op.eq_ignore_ascii_case("read") || op.eq_ignore_ascii_case("write"))
            && f[4].trim().parse::<u64>().is_ok()
            && f[5].trim().parse::<u64>().is_ok()
        {
            return Some(CsvFlavor::Msr);
        }
    }
    if f.len() >= 6
        && f[2].trim().parse::<u64>().is_ok()
        && f[3].trim().parse::<u64>().is_ok()
        && !f[1].trim().is_empty()
        && !f[4].trim().is_empty()
    {
        return Some(CsvFlavor::Twitter);
    }
    None
}

/// An order-preserving string→dense-id interner, writable to (and
/// readable from) a sidecar file so converted traces stay mappable back
/// to their original keys.
#[derive(Debug, Default, Clone)]
pub struct KeyDict {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

/// First line of a serialized [`KeyDict`].
pub const DICT_HEADER: &str = "#occdict01";

impl KeyDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `key`, interning it as the next dense id if unseen.
    pub fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.names.len() as u32;
        self.ids.insert(key.to_string(), id);
        self.names.push(key.to_string());
        id
    }

    /// Id for `key` if already interned.
    pub fn get(&self, key: &str) -> Option<u32> {
        self.ids.get(key).copied()
    }

    /// Original key for a dense id.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no key has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Serialize: a header line, then one key per line in id order.
    /// Keys must not contain newlines (CSV fields never do).
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), TraceIoError> {
        writeln!(w, "{DICT_HEADER}")?;
        for name in &self.names {
            writeln!(w, "{name}")?;
        }
        Ok(())
    }

    /// Deserialize a dictionary written by [`write_to`](Self::write_to).
    pub fn read_from<R: Read>(r: R) -> Result<Self, TraceIoError> {
        let mut lines = BufReader::new(r).lines();
        match lines.next() {
            Some(Ok(head)) if head.trim_end() == DICT_HEADER => {}
            Some(Ok(head)) => {
                return Err(parse_err(format!(
                    "bad dictionary header {head:?}, expected {DICT_HEADER:?}"
                )))
            }
            Some(Err(e)) => return Err(TraceIoError::Io(e)),
            None => return Err(parse_err("empty dictionary file")),
        }
        let mut dict = KeyDict::new();
        for line in lines {
            let line = line.map_err(TraceIoError::Io)?;
            dict.intern(line.trim_end_matches(['\r', '\n']));
        }
        Ok(dict)
    }
}

/// One parsed CSV record: the tenant key plus the page keys it touches
/// (one per block for MSR extents, exactly one for Twitter).
fn parse_record(
    flavor: CsvFlavor,
    line: &str,
    line_no: u64,
    mut emit: impl FnMut(&str, &str),
) -> Result<(), TraceIoError> {
    let bad = |what: &str| {
        parse_err(format!(
            "line {}: {what} in {} record {line:?}",
            line_no + 1,
            flavor.name()
        ))
    };
    let fields: Vec<&str> = line.split(',').collect();
    match flavor {
        CsvFlavor::Msr => {
            if fields.len() < 6 {
                return Err(bad("expected at least 6 comma-separated fields"));
            }
            let host = fields[1].trim();
            let disk = fields[2].trim();
            let op = fields[3].trim();
            if !op.eq_ignore_ascii_case("read") && !op.eq_ignore_ascii_case("write") {
                return Err(bad("operation is neither Read nor Write"));
            }
            let offset: u64 = fields[4]
                .trim()
                .parse()
                .map_err(|_| bad("offset is not an unsigned integer"))?;
            let size: u64 = fields[5]
                .trim()
                .parse()
                .map_err(|_| bad("size is not an unsigned integer"))?;
            let tenant = format!("{host}.{disk}");
            let first = offset / MSR_BLOCK_BYTES;
            // A zero-byte record still touches the block at `offset`.
            let last = offset.saturating_add(size.max(1) - 1) / MSR_BLOCK_BYTES;
            if last - first >= MAX_BLOCKS_PER_RECORD {
                return Err(bad("extent spans implausibly many blocks"));
            }
            for block in first..=last {
                emit(&tenant, &format!("{tenant}:{block}"));
            }
            Ok(())
        }
        CsvFlavor::Twitter => {
            if fields.len() < 6 {
                return Err(bad("expected at least 6 comma-separated fields"));
            }
            let key = fields[1].trim();
            let client = fields[4].trim();
            if key.is_empty() || client.is_empty() {
                return Err(bad("empty key or client id"));
            }
            emit(client, key);
            Ok(())
        }
    }
}

/// Whether a line carries no record: blank, or a `#` comment.
fn is_skippable(line: &str) -> bool {
    let t = line.trim();
    t.is_empty() || t.starts_with('#')
}

/// Whether the *first* data line is a column header rather than a record.
/// Both supported shapes lead with a numeric timestamp, so a non-numeric
/// first field (`timestamp,hostname,...`) marks a header. Only ever
/// applied to the first non-skippable line — later lines must parse.
fn looks_like_header(line: &str) -> bool {
    line.split(',')
        .next()
        .is_none_or(|f| f.trim().parse::<f64>().is_err())
}

/// A replayable [`RequestSource`] over a real-trace CSV file.
///
/// Built by [`open`](Self::open) in two passes; see the module docs for
/// the shape of each pass. The second (serving) pass re-reads the file,
/// so the file must not change between passes — a key that no longer
/// resolves, or a record count that disagrees with pass 1, parks a parse
/// error exactly like a truncated binary trace.
#[derive(Debug)]
pub struct CsvAdapter {
    path: PathBuf,
    flavor: CsvFlavor,
    /// `Some(n)` hashes tenants into `n` buckets; `None` assigns dense
    /// first-seen tenant ids.
    tenant_buckets: Option<u32>,
    universe: Universe,
    key_dict: KeyDict,
    tenant_dict: KeyDict,
    total: u64,
    served: u64,
    reader: BufReader<File>,
    /// Line number of the next line to read (0-based), for error reports.
    line_no: u64,
    /// Whether the next non-skippable line is the first — and so may be
    /// a column header.
    first_data_line: bool,
    pending: VecDeque<Request>,
    error: Option<TraceIoError>,
}

impl CsvAdapter {
    /// Open `path`, sniffing the flavor from the first data line when
    /// `flavor` is `None`, and bucketing tenants into `tenant_buckets`
    /// users when given. An unparseable first line is treated as a
    /// column header and skipped; every later line must parse.
    pub fn open(
        path: &Path,
        flavor: Option<CsvFlavor>,
        tenant_buckets: Option<u32>,
    ) -> Result<Self, TraceIoError> {
        if tenant_buckets == Some(0) {
            return Err(parse_err("tenant bucket count must be positive"));
        }
        // Pass 1: dictionaries, owner table, count.
        let mut key_dict = KeyDict::new();
        let mut tenant_dict = KeyDict::new();
        let mut owners: Vec<u32> = Vec::new();
        let mut total: u64 = 0;
        let mut resolved = flavor;
        let reader = BufReader::new(File::open(path)?);
        let mut first_data_line = true;
        for (line_no, line) in reader.lines().enumerate() {
            let line = line.map_err(TraceIoError::Io)?;
            if is_skippable(&line) {
                continue;
            }
            if first_data_line {
                first_data_line = false;
                if looks_like_header(&line) {
                    continue;
                }
            }
            let flavor = match resolved {
                Some(f) => f,
                None => match sniff_flavor(&line) {
                    Some(f) => {
                        resolved = Some(f);
                        f
                    }
                    None => {
                        return Err(parse_err(format!(
                            "line {}: matches neither the msr nor the twitter csv shape",
                            line_no + 1
                        )))
                    }
                },
            };
            parse_record(flavor, &line, line_no as u64, |tenant, page_key| {
                let owner = match tenant_buckets {
                    Some(n) => (fnv1a64(tenant) % n as u64) as u32,
                    None => tenant_dict.intern(tenant),
                };
                let pid = key_dict.intern(page_key);
                if pid as usize == owners.len() {
                    owners.push(owner);
                }
                total += 1;
            })?;
        }
        let Some(flavor) = resolved else {
            return Err(parse_err("no recognizable csv records in the file"));
        };
        if total == 0 {
            return Err(parse_err("no csv records in the file"));
        }
        let num_users = tenant_buckets.unwrap_or(tenant_dict.len() as u32);
        let universe = Universe::new(num_users, owners.into_iter().map(UserId).collect());

        // Pass 2 setup: reopen for serving.
        let reader = BufReader::new(File::open(path)?);
        Ok(CsvAdapter {
            path: path.to_path_buf(),
            flavor,
            tenant_buckets,
            universe,
            key_dict,
            tenant_dict,
            total,
            served: 0,
            reader,
            line_no: 0,
            first_data_line: true,
            pending: VecDeque::new(),
            error: None,
        })
    }

    /// The flavor this adapter parsed (sniffed or given).
    pub fn flavor(&self) -> CsvFlavor {
        self.flavor
    }

    /// Total requests counted in pass 1.
    pub fn total_requests(&self) -> u64 {
        self.total
    }

    /// The recorded page-key dictionary (page id = insertion order).
    pub fn key_dict(&self) -> &KeyDict {
        &self.key_dict
    }

    /// The tenant dictionary (empty when tenants are hash-bucketed).
    pub fn tenant_dict(&self) -> &KeyDict {
        &self.tenant_dict
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    /// Tear down the source; returns the parked error if the stream
    /// ended early.
    pub fn finish(self) -> Result<(), TraceIoError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Restart the serving pass from the top of the file — a fresh
    /// replay of the identical stream (dictionaries are *not* rebuilt).
    pub fn rewind(&mut self) -> Result<(), TraceIoError> {
        self.reader = BufReader::new(File::open(&self.path)?);
        self.line_no = 0;
        self.first_data_line = true;
        self.served = 0;
        self.pending.clear();
        self.error = None;
        Ok(())
    }

    /// Refill `pending` from the next data line. `Ok(false)` at clean
    /// end of stream.
    fn refill(&mut self) -> Result<bool, TraceIoError> {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                if self.served + self.pending.len() as u64 != self.total {
                    return Err(parse_err(format!(
                        "csv ended after {} of {} requests (file changed between passes?)",
                        self.served + self.pending.len() as u64,
                        self.total
                    )));
                }
                return Ok(false);
            }
            let line_no = self.line_no;
            self.line_no += 1;
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if is_skippable(trimmed) {
                continue;
            }
            if self.first_data_line {
                self.first_data_line = false;
                if looks_like_header(trimmed) {
                    continue;
                }
            }
            let key_dict = &self.key_dict;
            let tenant_dict = &self.tenant_dict;
            let tenant_buckets = self.tenant_buckets;
            let universe = &self.universe;
            let pending = &mut self.pending;
            let mut stale = None;
            let parse = parse_record(self.flavor, trimmed, line_no, |tenant, page_key| {
                let Some(pid) = key_dict.get(page_key) else {
                    stale = Some(format!(
                        "line {}: key {page_key:?} is not in the recorded dictionary \
                         (file changed between passes?)",
                        line_no + 1
                    ));
                    return;
                };
                // The request's user is the page's owner (first toucher,
                // fixed in pass 1); the tenant lookup only detects a file
                // that changed between passes.
                if tenant_buckets.is_none() && tenant_dict.get(tenant).is_none() {
                    stale = Some(format!(
                        "line {}: tenant {tenant:?} is not in the recorded \
                         dictionary (file changed between passes?)",
                        line_no + 1
                    ));
                    return;
                }
                pending.push_back(Request {
                    page: PageId(pid),
                    user: universe.owner(PageId(pid)),
                });
            });
            if let Some(msg) = stale {
                return Err(parse_err(msg));
            }
            parse?;
            if !self.pending.is_empty() {
                return Ok(true);
            }
        }
    }

    /// Pull the next request without an engine context (converters use
    /// this; the engine goes through [`RequestSource::next_request`],
    /// which delegates here).
    pub fn pull(&mut self) -> Option<Request> {
        if self.error.is_some() {
            return None;
        }
        while self.pending.is_empty() {
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
        let req = self.pending.pop_front();
        if req.is_some() {
            self.served += 1;
        }
        req
    }
}

impl RequestSource for CsvAdapter {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
        self.pull()
    }
}

impl SeekableSource for CsvAdapter {
    /// Parse-and-discard fast-forward: the stream after a seek is
    /// exactly the stream a full replay would serve from that position,
    /// including parked errors.
    fn seek_forward(&mut self, n: u64) {
        for _ in 0..n {
            if self.pull().is_none() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("occ-adapter-{name}-{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    fn drain(src: &mut CsvAdapter) -> Vec<Request> {
        let mut out = Vec::new();
        while let Some(r) = src.pull() {
            out.push(r);
        }
        out
    }

    const MSR_SAMPLE: &str = "\
128166372003061629,web0,0,Read,0,8192,1231\n\
128166372003061630,web0,0,Write,4096,4096,421\n\
128166372003061631,db1,2,Read,12288,1,87\n\
128166372003061632,web0,0,Read,0,4096,100\n";

    const TWITTER_SAMPLE: &str = "\
100,keyA,12,340,clientX,get,0\n\
101,keyB,10,120,clientY,set,500\n\
102,keyA,12,340,clientY,get,0\n\
103,keyC,8,88,clientX,gets,0\n";

    #[test]
    fn sniffs_both_flavors() {
        assert_eq!(
            sniff_flavor(MSR_SAMPLE.lines().next().unwrap()),
            Some(CsvFlavor::Msr)
        );
        assert_eq!(
            sniff_flavor(TWITTER_SAMPLE.lines().next().unwrap()),
            Some(CsvFlavor::Twitter)
        );
        assert_eq!(sniff_flavor("just,some,text"), None);
    }

    #[test]
    fn msr_extents_expand_to_blocks_with_first_touch_ownership() {
        let path = tmp("msr-basic", MSR_SAMPLE);
        let mut src = CsvAdapter::open(&path, None, None).unwrap();
        assert_eq!(src.flavor(), CsvFlavor::Msr);
        // Records expand to: [web0.0:0, web0.0:1], [web0.0:1], [db1.2:3],
        // [web0.0:0] — 5 requests over 3 distinct pages, 2 tenants.
        assert_eq!(src.total_requests(), 5);
        assert_eq!(src.universe().num_pages(), 3);
        assert_eq!(src.universe().num_users(), 2);
        let reqs = drain(&mut src);
        assert_eq!(reqs.len(), 5);
        // First-seen interning: web0.0:0 → p0, web0.0:1 → p1, db1.2:3 → p2.
        let pages: Vec<u32> = reqs.iter().map(|r| r.page.0).collect();
        assert_eq!(pages, vec![0, 1, 1, 2, 0]);
        // web0.0 = u0 owns p0 p1; db1.2 = u1 owns p2.
        assert_eq!(reqs[0].user, UserId(0));
        assert_eq!(reqs[3].user, UserId(1));
        assert_eq!(src.key_dict().name(2), Some("db1.2:3"));
        src.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn twitter_records_map_keys_and_clients() {
        let path = tmp("twitter-basic", TWITTER_SAMPLE);
        let mut src = CsvAdapter::open(&path, None, None).unwrap();
        assert_eq!(src.flavor(), CsvFlavor::Twitter);
        assert_eq!(src.total_requests(), 4);
        assert_eq!(src.universe().num_pages(), 3);
        assert_eq!(src.universe().num_users(), 2);
        let reqs = drain(&mut src);
        let pages: Vec<u32> = reqs.iter().map(|r| r.page.0).collect();
        assert_eq!(pages, vec![0, 1, 0, 2]);
        // keyA was first touched by clientX, so even clientY's later
        // access to keyA is owned by clientX (single-owner model).
        assert_eq!(reqs[2].user, reqs[0].user);
        src.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_lines_and_comments_are_skipped() {
        let with_header = format!("timestamp,key,key_size,value_size,client_id,operation,ttl\n# a comment\n\n{TWITTER_SAMPLE}");
        let path = tmp("twitter-header", &with_header);
        let mut src = CsvAdapter::open(&path, Some(CsvFlavor::Twitter), None).unwrap();
        assert_eq!(src.total_requests(), 4);
        assert_eq!(drain(&mut src).len(), 4);
        src.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tenant_bucketing_is_deterministic_and_bounded() {
        let path = tmp("twitter-buckets", TWITTER_SAMPLE);
        let mut a = CsvAdapter::open(&path, None, Some(2)).unwrap();
        assert_eq!(a.universe().num_users(), 2);
        let reqs_a = drain(&mut a);
        let mut b = CsvAdapter::open(&path, None, Some(2)).unwrap();
        let reqs_b = drain(&mut b);
        assert_eq!(reqs_a, reqs_b);
        for r in &reqs_a {
            assert!(r.user.0 < 2);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_are_parse_errors() {
        let bad = format!("{MSR_SAMPLE}128,web0,0,Read,notanumber,4096,1\n");
        let path = tmp("msr-bad", &bad);
        let err = CsvAdapter::open(&path, Some(CsvFlavor::Msr), None).unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
        std::fs::remove_file(&path).ok();

        let huge = "1,web0,0,Read,0,999999999999,1\n";
        let path = tmp("msr-huge", huge);
        let err = CsvAdapter::open(&path, Some(CsvFlavor::Msr), None).unwrap_err();
        assert!(err.to_string().contains("implausibly"), "{err}");
        std::fs::remove_file(&path).ok();

        let path = tmp("empty", "# only a comment\n");
        let err = CsvAdapter::open(&path, None, None).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_change_between_passes_parks_an_error() {
        let path = tmp("twitter-shrink", TWITTER_SAMPLE);
        let mut src = CsvAdapter::open(&path, None, None).unwrap();
        // Shrink the file after pass 1.
        std::fs::write(&path, TWITTER_SAMPLE.lines().next().unwrap()).unwrap();
        src.rewind().unwrap();
        let got = drain(&mut src);
        assert!(got.len() < 4);
        let err = src.finish().unwrap_err();
        assert!(err.to_string().contains("file changed"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seek_forward_matches_pull_and_discard() {
        let path = tmp("twitter-seek", TWITTER_SAMPLE);
        for skip in [0u64, 1, 3, 4, 9] {
            let mut pulled = CsvAdapter::open(&path, None, None).unwrap();
            for _ in 0..skip.min(4) {
                pulled.pull();
            }
            let mut sought = CsvAdapter::open(&path, None, None).unwrap();
            sought.seek_forward(skip);
            loop {
                let a = pulled.pull();
                let b = sought.pull();
                assert_eq!(a, b, "skip={skip}");
                if a.is_none() {
                    break;
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dict_round_trips_through_its_sidecar_form() {
        let mut dict = KeyDict::new();
        for key in ["web0.0:0", "web0.0:1", "db1.2:3"] {
            dict.intern(key);
        }
        let mut buf = Vec::new();
        dict.write_to(&mut buf).unwrap();
        let back = KeyDict::read_from(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
        for (id, key) in ["web0.0:0", "web0.0:1", "db1.2:3"].iter().enumerate() {
            assert_eq!(back.get(key), Some(id as u32));
            assert_eq!(back.name(id as u32), Some(*key));
        }
        let err = KeyDict::read_from(&b"not a dict\nx\n"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
    }

    #[test]
    fn rewound_replay_is_identical() {
        let path = tmp("msr-rewind", MSR_SAMPLE);
        let mut src = CsvAdapter::open(&path, None, None).unwrap();
        let first = drain(&mut src);
        src.rewind().unwrap();
        let second = drain(&mut src);
        assert_eq!(first, second);
        src.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }
}
