#![warn(missing_docs)]
//! Synthetic workloads for the convex-cost caching experiments.
//!
//! * [`generators`] — per-tenant access patterns (uniform, Zipf, cycle,
//!   scan, hot-set, phased drift);
//! * [`mixer`] — multi-tenant interleaving by arrival rate (the stand-in
//!   for proprietary SQLVM buffer-pool traces, see DESIGN.md);
//! * [`adversary`] — the §4 adaptive missing-page adversary behind
//!   Theorem 1.4's lower bound;
//! * [`presets`] — ready-made SLA scenarios used by the examples and the
//!   E7 experiment;
//! * [`zipf`] — the hand-rolled Zipf samplers (CDF binary search and the
//!   O(1) alias method);
//! * [`chaos`] — seeded fault injection ([`FaultPlan`], [`ChaosSource`])
//!   for robustness testing against corrupt request streams;
//! * [`streaming`] — zero-materialization [`RequestSource`] twins of the
//!   trace generators, for workloads too long to hold in memory.
//!
//! [`RequestSource`]: occ_sim::RequestSource

pub mod adapters;
pub mod adversary;
pub mod chaos;
pub mod generators;
pub mod mixer;
pub mod presets;
pub mod streaming;
pub mod zipf;

pub use adapters::{sniff_flavor, CsvAdapter, CsvFlavor, KeyDict, MSR_BLOCK_BYTES};
pub use adversary::{run_lower_bound, LowerBoundAdversary};
pub use chaos::{ChaosSource, FaultPlan, InjectedFaults};
pub use generators::{AccessPattern, PatternGen};
pub use mixer::{generate_multi_tenant, TenantSpec};
pub use presets::{all_scenarios, drifting, sqlvm_like, two_tier, Scenario};
pub use streaming::{PatternSource, TenantMixSource};
pub use zipf::{Zipf, ZipfAlias};

use occ_sim::{Trace, Universe};

/// The classical single-user `(k+1)`-page cycle — the adversarial pattern
/// on which LRU/FIFO pay every request while OPT pays one per `k`.
pub fn cycle_trace(num_pages: u32, len: usize) -> Trace {
    let u = Universe::single_user(num_pages);
    let pages: Vec<u32> = (0..len).map(|i| i as u32 % num_pages).collect();
    Trace::from_page_indices(&u, &pages)
}

/// A seeded uniform-random single-user trace.
pub fn uniform_trace(num_pages: u32, len: usize, seed: u64) -> Trace {
    let u = Universe::single_user(num_pages);
    let mut g = PatternGen::new(AccessPattern::Uniform, num_pages, seed);
    let pages: Vec<u32> = (0..len).map(|_| g.next_page()).collect();
    Trace::from_page_indices(&u, &pages)
}

/// A seeded Zipf single-user trace.
pub fn zipf_trace(num_pages: u32, len: usize, s: f64, seed: u64) -> Trace {
    let u = Universe::single_user(num_pages);
    let mut g = PatternGen::new(AccessPattern::Zipf { s }, num_pages, seed);
    let pages: Vec<u32> = (0..len).map(|_| g.next_page()).collect();
    Trace::from_page_indices(&u, &pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_trace_shape() {
        let t = cycle_trace(4, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.at(4).page.0, 0);
        assert_eq!(t.universe().num_users(), 1);
    }

    #[test]
    fn uniform_and_zipf_traces_cover_universe() {
        let t = uniform_trace(6, 600, 1);
        let distinct = t.distinct_pages_through(599);
        assert_eq!(distinct, 6);
        let z = zipf_trace(6, 600, 1.0, 1);
        assert!(z.distinct_pages_through(599) >= 4);
    }
}
