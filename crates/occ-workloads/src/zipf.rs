//! Hand-rolled Zipf samplers (no `rand_distr` in the dependency budget).
//!
//! Web/database page popularity is classically Zipfian; the SQLVM-style
//! multi-tenant experiments draw each tenant's accesses from a Zipf
//! distribution over its own pages. Two samplers share the distribution:
//!
//! * [`Zipf`] — inverse CDF with a precomputed table and binary search,
//!   exact, `O(log n)` per sample. Kept unchanged so old seeds keep
//!   producing byte-identical traces.
//! * [`ZipfAlias`] — Walker/Vose alias method, `O(1)` per sample, built
//!   on integer fixed-point grains so the alias table reconstructs its
//!   quantized pmf *exactly* (verified in tests). Its draw sequence
//!   differs from [`Zipf`]'s, so the two are not seed-compatible.

use rand::Rng;

/// Zipf distribution over `{0, 1, …, n−1}` with exponent `s ≥ 0`:
/// `P(i) ∝ 1/(i+1)^s`. `s = 0` is uniform; larger `s` is more skewed.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[i] = P(X ≤ i)`; `cdf[n-1] == 1`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding: the last entry must be exactly 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Heap footprint of the CDF table in bytes (independent of how many
    /// samples are drawn).
    pub fn state_bytes(&self) -> usize {
        self.cdf.len() * 8
    }
}

/// Grains per alias bucket: probabilities are quantized to multiples of
/// `2^-32`, so a bucket's acceptance threshold and the table invariants
/// live entirely in `u64` arithmetic — no floating-point drift.
const ALIAS_SCALE: u64 = 1 << 32;

/// O(1)-per-sample Zipf over `{0, 1, …, n−1}` via the Walker/Vose alias
/// method.
///
/// Construction quantizes the pmf to integer grains (`ALIAS_SCALE` per
/// bucket, `n · ALIAS_SCALE` total — rounding drift is patched onto rank
/// 0, the heaviest bucket, where it is relatively smallest) and then
/// pairs donors and recipients in exact integer arithmetic. The table
/// therefore satisfies, *exactly*:
///
/// ```text
/// weight[i] == prob[i] + Σ_{j : alias[j] == i} (ALIAS_SCALE − prob[j])
/// ```
///
/// which the unit tests check with `u64` equality (stronger than the
/// 1-ulp-per-bucket target).
#[derive(Clone, Debug)]
pub struct ZipfAlias {
    /// Acceptance grains per bucket (`≤ ALIAS_SCALE`).
    prob: Vec<u64>,
    /// Where a rejected grain lands.
    alias: Vec<u32>,
    /// Quantized weights; `Σ weight == n · ALIAS_SCALE`.
    weight: Vec<u64>,
}

impl ZipfAlias {
    /// Build the table. Panics if `n == 0`, `n > 2^31`, or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(n <= 1 << 31, "alias support capped at 2^31 ranks");
        assert!(s >= 0.0, "exponent must be non-negative");
        let raw: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let total: f64 = raw.iter().sum();
        let target = n as u64 * ALIAS_SCALE;
        let mut weight: Vec<u64> = raw
            .iter()
            .map(|w| ((w / total) * target as f64).round() as u64)
            .collect();
        let sum: u64 = weight.iter().sum();
        // Per-bucket rounding is < 1 grain, so |drift| < n grains —
        // far below weight[0] ≥ target/n ≥ ALIAS_SCALE grains.
        if sum > target {
            weight[0] -= sum - target;
        } else {
            weight[0] += target - sum;
        }

        let mut work = weight.clone();
        let mut prob = vec![0u64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &w) in work.iter().enumerate() {
            if w < ALIAS_SCALE {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s_i), Some(&l_i)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            let (s_i, l_i) = (s_i as usize, l_i as usize);
            prob[s_i] = work[s_i];
            alias[s_i] = l_i as u32;
            // The donor covers the deficit grain-for-grain.
            work[l_i] -= ALIAS_SCALE - work[s_i];
            if work[l_i] < ALIAS_SCALE {
                small.push(l_i as u32);
            } else {
                large.push(l_i as u32);
            }
        }
        // Integer grains sum to exactly n·ALIAS_SCALE, so whatever
        // remains unpaired holds exactly ALIAS_SCALE grains: full
        // acceptance, self-alias.
        for &i in small.iter().chain(large.iter()) {
            debug_assert_eq!(work[i as usize], ALIAS_SCALE);
            prob[i as usize] = work[i as usize];
            alias[i as usize] = i;
        }
        ZipfAlias {
            prob,
            alias,
            weight,
        }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.prob.len()
    }

    /// Draw one sample: one uniform bucket pick plus one grain compare.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let bucket = rng.gen_range(0..self.prob.len());
        let grain = rng.next_u64() >> 32; // uniform in [0, ALIAS_SCALE)
        if grain < self.prob[bucket] {
            bucket
        } else {
            self.alias[bucket] as usize
        }
    }

    /// Probability mass of rank `i` under the quantized distribution the
    /// table actually samples from.
    pub fn pmf(&self, i: usize) -> f64 {
        self.weight[i] as f64 / (self.n() as u64 * ALIAS_SCALE) as f64
    }

    /// Reconstruct each rank's total grains from the table alone: the
    /// grains a bucket accepts itself plus every grain other buckets
    /// forward to it. Equals `weight` exactly by construction.
    pub fn reconstruct_weights(&self) -> Vec<u64> {
        let mut rec = self.prob.clone();
        for (j, &a) in self.alias.iter().enumerate() {
            // Self-aliased buckets forward 0 grains (prob == ALIAS_SCALE).
            rec[a as usize] += ALIAS_SCALE - self.prob[j];
        }
        rec
    }

    /// Heap footprint of the table in bytes (three arrays; independent
    /// of how many samples are drawn).
    pub fn state_bytes(&self) -> usize {
        self.prob.len() * 8 + self.alias.len() * 4 + self.weight.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_masses() {
        let z = Zipf::new(10, 1.2);
        for i in 1..10 {
            assert!(z.pmf(i) < z.pmf(i - 1), "pmf must be decreasing");
        }
        let total: f64 = (0..10).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - z.pmf(i)).abs() < 0.01,
                "rank {i}: empirical {emp} vs pmf {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_rejected() {
        Zipf::new(0, 1.0);
    }

    // ---- alias sampler ----

    #[test]
    fn alias_table_reconstructs_pmf_exactly() {
        // The ISSUE asks for "within 1 ulp per bucket"; integer grains
        // give exact u64 equality, which is strictly stronger.
        for &n in &[1usize, 2, 7, 1024] {
            for &s in &[0.0, 0.5, 0.9, 1.0, 2.5] {
                let z = ZipfAlias::new(n, s);
                assert_eq!(
                    z.reconstruct_weights(),
                    z.weight,
                    "n={n} s={s}: alias table must reconstruct the quantized pmf"
                );
                let total: u64 = z.weight.iter().sum();
                assert_eq!(total, n as u64 * ALIAS_SCALE, "n={n} s={s}");
                let pmf_total: f64 = (0..n).map(|i| z.pmf(i)).sum();
                assert!((pmf_total - 1.0).abs() < 1e-12, "n={n} s={s}: {pmf_total}");
            }
        }
    }

    #[test]
    fn alias_pmf_matches_cdf_sampler_pmf() {
        // Quantization error is < 1 grain (2^-32) per bucket, plus the
        // drift patch on rank 0 (< n grains) — both far under 1e-6.
        for &n in &[2usize, 7, 1024] {
            let cdf = Zipf::new(n, 0.9);
            let alias = ZipfAlias::new(n, 0.9);
            for i in 0..n {
                assert!(
                    (cdf.pmf(i) - alias.pmf(i)).abs() < 1e-6,
                    "n={n} rank {i}: {} vs {}",
                    cdf.pmf(i),
                    alias.pmf(i)
                );
            }
        }
    }

    #[test]
    fn alias_degenerate_single_rank() {
        let z = ZipfAlias::new(1, 1.7);
        assert_eq!(z.n(), 1);
        assert_eq!(z.weight, vec![ALIAS_SCALE]);
        assert_eq!(z.reconstruct_weights(), z.weight);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_uniform_when_s_zero() {
        let z = ZipfAlias::new(8, 0.0);
        for i in 0..8 {
            assert_eq!(z.weight[i], ALIAS_SCALE, "uniform weights are exact");
            assert!((z.pmf(i) - 0.125).abs() < 1e-12);
        }
        // Every bucket fully accepts: the alias column is never taken.
        assert_eq!(z.reconstruct_weights(), z.weight);
    }

    #[test]
    fn alias_empirical_frequencies_match_pmf() {
        let z = ZipfAlias::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - z.pmf(i)).abs() < 0.01,
                "rank {i}: empirical {emp} vs pmf {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn alias_samples_in_range_and_reproducible() {
        let z = ZipfAlias::new(3, 2.0);
        let draw = || {
            let mut rng = StdRng::seed_from_u64(11);
            (0..1000).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw();
        assert_eq!(a, draw());
        assert!(a.iter().all(|&i| i < 3));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn alias_empty_support_rejected() {
        ZipfAlias::new(0, 1.0);
    }
}
