//! Hand-rolled Zipf sampler (no `rand_distr` in the dependency budget).
//!
//! Web/database page popularity is classically Zipfian; the SQLVM-style
//! multi-tenant experiments draw each tenant's accesses from a Zipf
//! distribution over its own pages. Sampling is by inverse CDF with a
//! precomputed table and binary search — exact, `O(log n)` per sample.

use rand::Rng;

/// Zipf distribution over `{0, 1, …, n−1}` with exponent `s ≥ 0`:
/// `P(i) ∝ 1/(i+1)^s`. `s = 0` is uniform; larger `s` is more skewed.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[i] = P(X ≤ i)`; `cdf[n-1] == 1`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding: the last entry must be exactly 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_masses() {
        let z = Zipf::new(10, 1.2);
        for i in 1..10 {
            assert!(z.pmf(i) < z.pmf(i - 1), "pmf must be decreasing");
        }
        let total: f64 = (0..10).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - z.pmf(i)).abs() < 0.01,
                "rank {i}: empirical {emp} vs pmf {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_rejected() {
        Zipf::new(0, 1.0);
    }
}
