//! Per-tenant access patterns and single-stream trace generators.

use crate::zipf::{Zipf, ZipfAlias};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How one tenant walks over its own pages. Page indices produced are
/// *local* (0-based within the tenant's page set); the mixer maps them to
/// global page ids.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Uniformly random page.
    Uniform,
    /// Zipf-distributed page popularity with exponent `s`.
    Zipf {
        /// Skew exponent (0 = uniform, ~1 = classic web skew).
        s: f64,
    },
    /// Deterministic cycle over the first `len` pages — the classical
    /// LRU-adversarial pattern when `len` exceeds the tenant's share of
    /// the cache.
    Cycle {
        /// Cycle length (clamped to the tenant's page count).
        len: u32,
    },
    /// One sequential sweep over all pages, repeating.
    Scan,
    /// A hot set of the first `hot_pages` pages hit with probability
    /// `hot_prob`; the rest uniform over the cold pages.
    HotSet {
        /// Number of hot pages.
        hot_pages: u32,
        /// Probability a request goes to the hot set.
        hot_prob: f64,
    },
    /// Zipf popularity whose rank order rotates every `phase_len`
    /// requests — models working-set drift.
    Phased {
        /// Zipf exponent within a phase.
        s: f64,
        /// Requests per phase.
        phase_len: u64,
    },
    /// Zipf popularity sampled through the O(1) alias method (see
    /// [`ZipfAlias`]) — same distribution family as
    /// [`AccessPattern::Zipf`] but a different draw sequence, so seeds
    /// are **not** byte-compatible between the two variants. Use this
    /// for new high-volume workloads; keep `Zipf` for traces whose
    /// seeds are already pinned by committed baselines.
    ZipfAliased {
        /// Skew exponent.
        s: f64,
    },
}

/// Stateful generator of one tenant's local page indices.
#[derive(Debug)]
pub struct PatternGen {
    pattern: AccessPattern,
    pages: u32,
    rng: StdRng,
    /// Requests emitted so far (drives Scan/Cycle/Phased).
    count: u64,
    zipf: Option<Zipf>,
    alias: Option<ZipfAlias>,
}

impl PatternGen {
    /// Create a generator over `pages` local pages.
    pub fn new(pattern: AccessPattern, pages: u32, seed: u64) -> Self {
        assert!(pages > 0, "a tenant needs at least one page");
        let zipf = match &pattern {
            AccessPattern::Zipf { s } | AccessPattern::Phased { s, .. } => {
                Some(Zipf::new(pages as usize, *s))
            }
            _ => None,
        };
        let alias = match &pattern {
            AccessPattern::ZipfAliased { s } => Some(ZipfAlias::new(pages as usize, *s)),
            _ => None,
        };
        PatternGen {
            pattern,
            pages,
            rng: StdRng::seed_from_u64(seed),
            count: 0,
            zipf,
            alias,
        }
    }

    /// Next local page index.
    pub fn next_page(&mut self) -> u32 {
        let pages = self.pages;
        let out = match &self.pattern {
            AccessPattern::Uniform => self.rng.gen_range(0..pages),
            AccessPattern::Zipf { .. } => self
                .zipf
                .as_ref()
                .expect("built in new")
                .sample(&mut self.rng) as u32,
            AccessPattern::Cycle { len } => {
                let len = (*len).clamp(1, pages);
                (self.count % len as u64) as u32
            }
            AccessPattern::Scan => (self.count % pages as u64) as u32,
            AccessPattern::HotSet {
                hot_pages,
                hot_prob,
            } => {
                let hot = (*hot_pages).clamp(1, pages);
                if pages == hot || self.rng.gen::<f64>() < *hot_prob {
                    self.rng.gen_range(0..hot)
                } else {
                    self.rng.gen_range(hot..pages)
                }
            }
            AccessPattern::Phased { phase_len, .. } => {
                let rank = self
                    .zipf
                    .as_ref()
                    .expect("built in new")
                    .sample(&mut self.rng) as u64;
                let phase = self.count / (*phase_len).max(1);
                // Rotate rank→page mapping each phase.
                ((rank + phase * 3) % pages as u64) as u32
            }
            AccessPattern::ZipfAliased { .. } => self
                .alias
                .as_ref()
                .expect("built in new")
                .sample(&mut self.rng) as u32,
        };
        self.count += 1;
        out
    }

    /// Heap footprint of the generator in bytes: the sampler tables (if
    /// any). Constant over the generator's lifetime — generation never
    /// allocates per request.
    pub fn state_bytes(&self) -> usize {
        self.zipf.as_ref().map_or(0, |z| z.state_bytes())
            + self.alias.as_ref().map_or(0, |z| z.state_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_periodic() {
        let mut g = PatternGen::new(AccessPattern::Cycle { len: 3 }, 5, 0);
        let seq: Vec<u32> = (0..7).map(|_| g.next_page()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn scan_sweeps_all_pages() {
        let mut g = PatternGen::new(AccessPattern::Scan, 4, 0);
        let seq: Vec<u32> = (0..8).map(|_| g.next_page()).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn hot_set_concentrates() {
        let mut g = PatternGen::new(
            AccessPattern::HotSet {
                hot_pages: 2,
                hot_prob: 0.9,
            },
            10,
            7,
        );
        let n = 10_000;
        let hot_hits = (0..n).filter(|_| g.next_page() < 2).count();
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.03, "hot fraction {frac}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut g = PatternGen::new(AccessPattern::Zipf { s: 1.2 }, 8, 3);
        let mut counts = [0u32; 8];
        for _ in 0..20_000 {
            counts[g.next_page() as usize] += 1;
        }
        assert!(counts[0] > counts[3]);
        assert!(counts[3] > counts[7]);
    }

    #[test]
    fn phased_rotates_hot_page() {
        let mut g = PatternGen::new(
            AccessPattern::Phased {
                s: 3.0,
                phase_len: 1000,
            },
            9,
            5,
        );
        let mut first = [0u32; 9];
        for _ in 0..1000 {
            first[g.next_page() as usize] += 1;
        }
        let mut second = [0u32; 9];
        for _ in 0..1000 {
            second[g.next_page() as usize] += 1;
        }
        let hot1 = first.iter().enumerate().max_by_key(|&(_, c)| c).unwrap().0;
        let hot2 = second.iter().enumerate().max_by_key(|&(_, c)| c).unwrap().0;
        assert_ne!(hot1, hot2, "hot page must drift across phases");
    }

    #[test]
    fn aliased_zipf_prefers_low_ranks() {
        let mut g = PatternGen::new(AccessPattern::ZipfAliased { s: 1.2 }, 8, 3);
        let mut counts = [0u32; 8];
        for _ in 0..20_000 {
            counts[g.next_page() as usize] += 1;
        }
        assert!(counts[0] > counts[3]);
        assert!(counts[3] > counts[7]);
        assert!(g.state_bytes() > 0, "alias tables are accounted");
    }

    #[test]
    fn generators_are_reproducible() {
        let run = || {
            let mut g = PatternGen::new(AccessPattern::Zipf { s: 0.8 }, 16, 99);
            (0..50).map(|_| g.next_page()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
