//! Zero-materialization request sources: synthetic workloads streamed
//! one request at a time in O(1) memory.
//!
//! The materializing generators ([`crate::zipf_trace`],
//! [`crate::generate_multi_tenant`], …) build a `Vec<Request>` up front,
//! so trace length is bounded by memory. The sources here are their
//! streaming twins: the same RNGs seeded the same way drawing in the
//! same order, so for a given `(spec, len, seed)` the streamed requests
//! are **byte-identical** to the materialized trace — pinned by tests —
//! while the source's heap footprint ([`state_bytes`](PatternSource::state_bytes))
//! is a function of the universe and sampler tables only, independent of
//! `len`. A 10-million-request run holds a few kilobytes, not a
//! trace.
//!
//! Pair them with
//! [`Simulator::run_source_batched`](occ_sim::Simulator::run_source_batched)
//! (or a [`SteppingEngine`](occ_sim::SteppingEngine) loop) to keep the
//! whole replay allocation-free per request.

use crate::generators::{AccessPattern, PatternGen};
use crate::mixer::TenantSpec;
use occ_sim::{EngineCtx, PageId, Request, RequestSource, SeekableSource, Universe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Streaming twin of the single-user trace helpers: `pattern` over
/// `num_pages` pages, `len` requests, drawn exactly as
/// [`crate::zipf_trace`] / [`crate::uniform_trace`] would.
pub struct PatternSource {
    universe: Universe,
    gen: PatternGen,
    remaining: u64,
}

impl PatternSource {
    /// A `len`-request single-user source.
    pub fn new(pattern: AccessPattern, num_pages: u32, len: u64, seed: u64) -> Self {
        PatternSource {
            universe: Universe::single_user(num_pages),
            gen: PatternGen::new(pattern, num_pages, seed),
            remaining: len,
        }
    }

    /// Requests left to produce.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Heap footprint in bytes: owner table + sampler tables. Constant
    /// over the source's lifetime and independent of `len`.
    pub fn state_bytes(&self) -> usize {
        self.universe.num_pages() as usize * std::mem::size_of::<occ_sim::UserId>()
            + self.gen.state_bytes()
    }

    /// Draw and discard the next `n` requests, advancing the RNG state
    /// exactly as `n` calls to `next_request` would. `occ soak` uses
    /// this to fast-forward a source to a checkpoint's position so the
    /// resumed stream continues byte-identically.
    pub fn skip(&mut self, n: u64) {
        for _ in 0..n.min(self.remaining) {
            self.remaining -= 1;
            self.gen.next_page();
        }
    }
}

impl RequestSource for PatternSource {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.universe.request(PageId(self.gen.next_page())))
    }
}

impl SeekableSource for PatternSource {
    fn seek_forward(&mut self, n: u64) {
        self.skip(n);
    }
}

/// Streaming twin of [`crate::generate_multi_tenant`]: the same mixer
/// RNG, the same per-tenant generator seeds, the same draw order — so
/// the emitted stream is byte-identical to the materialized trace for
/// the same `(specs, len, seed)`.
pub struct TenantMixSource {
    universe: Universe,
    /// Page-id offset of each tenant's first page.
    offsets: Vec<u32>,
    gens: Vec<PatternGen>,
    /// Cumulative normalized arrival weights.
    cum: Vec<f64>,
    rng: StdRng,
    remaining: u64,
}

impl TenantMixSource {
    /// A `len`-request multi-tenant source. Deterministic in
    /// `(specs, len, seed)`; panics if `specs` is empty (matching
    /// [`crate::generate_multi_tenant`]).
    pub fn new(specs: &[TenantSpec], len: u64, seed: u64) -> Self {
        assert!(!specs.is_empty(), "need at least one tenant");
        let universe = Universe::with_sizes(&specs.iter().map(|s| s.pages).collect::<Vec<_>>());
        let mut offsets = Vec::with_capacity(specs.len());
        let mut acc = 0u32;
        for s in specs {
            offsets.push(acc);
            acc += s.pages;
        }
        let gens: Vec<PatternGen> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                PatternGen::new(
                    s.pattern.clone(),
                    s.pages,
                    seed ^ (0x9E37 + i as u64 * 0x79B9),
                )
            })
            .collect();
        let total_w: f64 = specs.iter().map(|s| s.weight).sum();
        let cum: Vec<f64> = specs
            .iter()
            .scan(0.0, |a, s| {
                *a += s.weight / total_w;
                Some(*a)
            })
            .collect();
        TenantMixSource {
            universe,
            offsets,
            gens,
            cum,
            rng: StdRng::seed_from_u64(seed),
            remaining: len,
        }
    }

    /// Requests left to produce.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Heap footprint in bytes: owner table, per-tenant generator
    /// tables, offsets and weights. Constant over the source's lifetime
    /// and independent of `len`.
    pub fn state_bytes(&self) -> usize {
        self.universe.num_pages() as usize * std::mem::size_of::<occ_sim::UserId>()
            + self.offsets.len() * 4
            + self.cum.len() * 8
            + self.gens.iter().map(|g| g.state_bytes()).sum::<usize>()
    }

    /// Draw and discard the next `n` requests, advancing the mixer RNG
    /// and the chosen tenants' generators exactly as `n` calls to
    /// `next_request` would. `occ soak` uses this to fast-forward a
    /// source to a checkpoint's position so the resumed stream
    /// continues byte-identically.
    pub fn skip(&mut self, n: u64) {
        for _ in 0..n.min(self.remaining) {
            self.remaining -= 1;
            self.draw();
        }
    }

    /// One mixed draw: pick a tenant by arrival weight, then its next
    /// page. Shared by `next_request` and `skip` so the two advance the
    /// RNG state identically.
    fn draw(&mut self) -> PageId {
        let u: f64 = self.rng.gen();
        let tenant = self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1);
        let local = self.gens[tenant].next_page();
        PageId(self.offsets[tenant] + local)
    }
}

impl RequestSource for TenantMixSource {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let page = self.draw();
        Some(self.universe.request(page))
    }
}

impl SeekableSource for TenantMixSource {
    fn seek_forward(&mut self, n: u64) {
        self.skip(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixer::generate_multi_tenant;
    use crate::{uniform_trace, zipf_trace};
    use occ_sim::{CacheSet, SimStats};

    fn drain<S: RequestSource>(src: &mut S) -> Vec<Request> {
        let universe = src.universe().clone();
        let cache = CacheSet::new(1, universe.num_pages());
        let stats = SimStats::new(universe.num_users());
        let ctx = EngineCtx {
            time: 0,
            cache: &cache,
            stats: &stats,
            universe: &universe,
        };
        let mut out = Vec::new();
        while let Some(r) = src.next_request(&ctx) {
            out.push(r);
        }
        out
    }

    #[test]
    fn pattern_source_matches_materialized_helpers() {
        let mut z = PatternSource::new(AccessPattern::Zipf { s: 0.9 }, 32, 500, 7);
        assert_eq!(drain(&mut z), zipf_trace(32, 500, 0.9, 7).requests());

        let mut u = PatternSource::new(AccessPattern::Uniform, 16, 300, 3);
        assert_eq!(drain(&mut u), uniform_trace(16, 300, 3).requests());
    }

    #[test]
    fn tenant_mix_source_matches_materialized_mixer() {
        let specs = vec![
            TenantSpec::new(8, 3.0, AccessPattern::Zipf { s: 1.0 }),
            TenantSpec::new(4, 1.0, AccessPattern::Cycle { len: 4 }),
            TenantSpec::new(6, 2.0, AccessPattern::ZipfAliased { s: 0.8 }),
        ];
        let mut src = TenantMixSource::new(&specs, 2000, 11);
        let trace = generate_multi_tenant(&specs, 2000, 11);
        assert_eq!(src.universe(), trace.universe());
        assert_eq!(drain(&mut src), trace.requests());
    }

    #[test]
    fn state_bytes_is_independent_of_length() {
        let specs = vec![
            TenantSpec::new(64, 4.0, AccessPattern::Zipf { s: 0.9 }),
            TenantSpec::new(32, 1.0, AccessPattern::Uniform),
        ];
        let short = TenantMixSource::new(&specs, 100, 5);
        let long = TenantMixSource::new(&specs, 10_000_000, 5);
        assert_eq!(short.state_bytes(), long.state_bytes());
        assert!(long.state_bytes() > 0);

        let short = PatternSource::new(AccessPattern::ZipfAliased { s: 1.0 }, 128, 10, 1);
        let long = PatternSource::new(AccessPattern::ZipfAliased { s: 1.0 }, 128, u64::MAX, 1);
        assert_eq!(short.state_bytes(), long.state_bytes());
    }

    #[test]
    fn skip_matches_draw_and_discard() {
        let specs = vec![
            TenantSpec::new(16, 2.0, AccessPattern::Zipf { s: 1.0 }),
            TenantSpec::new(8, 1.0, AccessPattern::Uniform),
        ];
        let mut whole = TenantMixSource::new(&specs, 1000, 42);
        let full = drain(&mut whole);

        let mut skipped = TenantMixSource::new(&specs, 1000, 42);
        skipped.skip(400);
        assert_eq!(skipped.remaining(), 600);
        assert_eq!(drain(&mut skipped), full[400..]);

        // Skipping past the end just runs the source dry.
        let mut over = TenantMixSource::new(&specs, 100, 42);
        over.skip(1_000_000);
        assert_eq!(over.remaining(), 0);

        let mut p_whole = PatternSource::new(AccessPattern::Zipf { s: 0.9 }, 32, 500, 7);
        let p_full = drain(&mut p_whole);
        let mut p_skip = PatternSource::new(AccessPattern::Zipf { s: 0.9 }, 32, 500, 7);
        p_skip.skip(123);
        assert_eq!(drain(&mut p_skip), p_full[123..]);
    }

    #[test]
    fn sources_run_dry_exactly_once() {
        let mut s = PatternSource::new(AccessPattern::Scan, 4, 3, 0);
        assert_eq!(s.remaining(), 3);
        let got = drain(&mut s);
        assert_eq!(got.len(), 3);
        assert_eq!(s.remaining(), 0);
        assert!(drain(&mut s).is_empty());
    }
}
