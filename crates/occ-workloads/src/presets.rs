//! Ready-made multi-tenant SLA scenarios (the §1.1 motivation).
//!
//! Substitutes for the proprietary SQLVM workloads \[14, 15\]: each preset
//! pairs a tenant mix (page counts, arrival rates, access patterns) with
//! an SLA-style cost profile (piecewise-linear refunds, weighted tiers).

use crate::generators::AccessPattern;
use crate::mixer::{generate_multi_tenant, TenantSpec};
use crate::streaming::TenantMixSource;
use occ_core::{CostFn, CostProfile, Linear, Monomial, PiecewiseLinear};
use occ_sim::Trace;
use std::sync::Arc;

/// A fully specified multi-tenant scenario.
#[derive(Debug)]
pub struct Scenario {
    /// Human-readable name for experiment tables.
    pub name: &'static str,
    /// Tenant workload specs.
    pub tenants: Vec<TenantSpec>,
    /// Per-tenant cost functions (SLA refunds).
    pub costs: CostProfile,
    /// Suggested cache size for the headline experiment.
    pub suggested_k: usize,
}

impl Scenario {
    /// Generate the request trace for this scenario.
    pub fn trace(&self, len: usize, seed: u64) -> Trace {
        generate_multi_tenant(&self.tenants, len, seed)
    }

    /// Stream this scenario's requests without materializing a trace.
    ///
    /// Byte-identical to [`Scenario::trace`] with the same `(len, seed)`,
    /// but holds O(tenants + pages) memory regardless of `len` — the
    /// fleet runner and long-horizon benchmarks use this.
    pub fn stream(&self, len: u64, seed: u64) -> TenantMixSource {
        TenantMixSource::new(&self.tenants, len, seed)
    }
}

/// The headline scenario: four database tenants sharing a buffer pool.
///
/// * `premium-oltp` — high-rate Zipf tenant with a steep piecewise-linear
///   SLA (tolerates 50 misses, then refunds 20× per miss);
/// * `standard-oltp` — same shape, softer SLA;
/// * `analytics` — scan-heavy tenant paying a small linear cost (scans
///   are expected to miss; the SLA prices that in);
/// * `batch` — low-priority tenant with a soft bounded SLA.
///
/// All refund slopes are *bounded* (piecewise-linear or linear), matching
/// the SLA schedules of \[14\]: an unbounded marginal (e.g. a quadratic on
/// a scan tenant) would let a cache-hostile tenant's pages squat in the
/// cache purely because its accumulated misses inflate its marginal —
/// the `two-tier` scenario exercises that unbounded regime deliberately.
pub fn sqlvm_like() -> Scenario {
    Scenario {
        name: "sqlvm-like",
        tenants: vec![
            TenantSpec::new(64, 4.0, AccessPattern::Zipf { s: 0.9 }),
            TenantSpec::new(64, 2.0, AccessPattern::Zipf { s: 0.7 }),
            TenantSpec::new(96, 1.5, AccessPattern::Scan),
            TenantSpec::new(32, 1.0, AccessPattern::Uniform),
        ],
        costs: CostProfile::new(vec![
            Arc::new(PiecewiseLinear::sla(50.0, 1.0, 20.0)) as CostFn,
            Arc::new(PiecewiseLinear::sla(100.0, 1.0, 8.0)) as CostFn,
            Arc::new(Linear::new(0.5)) as CostFn,
            Arc::new(PiecewiseLinear::sla(30.0, 0.5, 4.0)) as CostFn,
        ]),
        suggested_k: 96,
    }
}

/// A skew-stress scenario: two identical Zipf tenants, one with a
/// quadratic cost, one linear — the minimal setting where cost-awareness
/// must visibly shift misses.
pub fn two_tier() -> Scenario {
    Scenario {
        name: "two-tier",
        tenants: vec![
            TenantSpec::new(32, 1.0, AccessPattern::Zipf { s: 0.8 }),
            TenantSpec::new(32, 1.0, AccessPattern::Zipf { s: 0.8 }),
        ],
        costs: CostProfile::new(vec![
            Arc::new(Monomial::power(2.0)) as CostFn,
            Arc::new(Linear::unit()) as CostFn,
        ]),
        suggested_k: 24,
    }
}

/// A drift scenario: phased working sets against piecewise-linear SLAs,
/// stressing policies that rely on stable popularity.
pub fn drifting() -> Scenario {
    Scenario {
        name: "drifting",
        tenants: vec![
            TenantSpec::new(
                48,
                2.0,
                AccessPattern::Phased {
                    s: 1.1,
                    phase_len: 2000,
                },
            ),
            TenantSpec::new(
                48,
                1.0,
                AccessPattern::HotSet {
                    hot_pages: 6,
                    hot_prob: 0.85,
                },
            ),
        ],
        costs: CostProfile::new(vec![
            Arc::new(PiecewiseLinear::sla(40.0, 1.0, 12.0)) as CostFn,
            Arc::new(Linear::new(2.0)) as CostFn,
        ]),
        suggested_k: 32,
    }
}

/// All presets, for sweep experiments.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![sqlvm_like(), two_tier(), drifting()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_generate_valid_traces() {
        for s in all_scenarios() {
            let t = s.trace(2000, 11);
            assert_eq!(t.len(), 2000);
            assert_eq!(
                t.universe().num_users() as usize,
                s.tenants.len(),
                "{}: tenant/universe mismatch",
                s.name
            );
            assert_eq!(
                s.costs.num_users() as usize,
                s.tenants.len(),
                "{}: cost/tenant mismatch",
                s.name
            );
            assert!(s.suggested_k < t.universe().num_pages() as usize);
        }
    }

    #[test]
    fn sqlvm_costs_are_convex_with_finite_alpha() {
        let s = sqlvm_like();
        assert!(s.costs.all_convex());
        let alpha = s.costs.alpha().expect("finite α");
        assert!(alpha >= 1.0 && alpha.is_finite());
    }

    #[test]
    fn traces_are_deterministic() {
        let s = two_tier();
        assert_eq!(s.trace(300, 5).requests(), s.trace(300, 5).requests());
    }

    #[test]
    fn stream_matches_trace_for_all_presets() {
        use occ_sim::{CacheSet, EngineCtx, RequestSource, SimStats};
        for s in all_scenarios() {
            let trace = s.trace(400, 9);
            let mut src = s.stream(400, 9);
            let universe = src.universe().clone();
            let cache = CacheSet::new(1, universe.num_pages());
            let stats = SimStats::new(universe.num_users());
            let ctx = EngineCtx {
                time: 0,
                cache: &cache,
                stats: &stats,
                universe: &universe,
            };
            let mut streamed = Vec::new();
            while let Some(r) = src.next_request(&ctx) {
                streamed.push(r);
            }
            assert_eq!(streamed, trace.requests(), "{}", s.name);
        }
    }
}
