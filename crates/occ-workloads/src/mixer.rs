//! Multi-tenant trace synthesis: interleave per-tenant streams by
//! arrival rate.
//!
//! This is the substitute for the proprietary SQLVM/Azure SQL buffer-pool
//! traces (see DESIGN.md): each tenant gets its own page set, access
//! pattern, and arrival weight; the mixer draws the next requester
//! proportionally to weight and the requester's pattern picks the page.

use crate::generators::{AccessPattern, PatternGen};
use occ_sim::{PageId, Trace, TraceBuilder, Universe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One tenant's workload specification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Number of pages the tenant owns.
    pub pages: u32,
    /// Relative arrival rate (any positive scale).
    pub weight: f64,
    /// Access pattern over the tenant's own pages.
    pub pattern: AccessPattern,
}

impl TenantSpec {
    /// Shorthand constructor.
    pub fn new(pages: u32, weight: f64, pattern: AccessPattern) -> Self {
        assert!(pages > 0 && weight > 0.0);
        TenantSpec {
            pages,
            weight,
            pattern,
        }
    }
}

/// Generate a `len`-request multi-tenant trace from per-tenant specs.
///
/// Deterministic in `(specs, len, seed)`.
pub fn generate_multi_tenant(specs: &[TenantSpec], len: usize, seed: u64) -> Trace {
    assert!(!specs.is_empty(), "need at least one tenant");
    let universe = Universe::with_sizes(&specs.iter().map(|s| s.pages).collect::<Vec<_>>());
    // Page-id offset of each tenant's first page.
    let mut offsets = Vec::with_capacity(specs.len());
    let mut acc = 0u32;
    for s in specs {
        offsets.push(acc);
        acc += s.pages;
    }
    let mut gens: Vec<PatternGen> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            PatternGen::new(
                s.pattern.clone(),
                s.pages,
                seed ^ (0x9E37 + i as u64 * 0x79B9),
            )
        })
        .collect();
    // Cumulative arrival weights.
    let total_w: f64 = specs.iter().map(|s| s.weight).sum();
    let cum: Vec<f64> = specs
        .iter()
        .scan(0.0, |a, s| {
            *a += s.weight / total_w;
            Some(*a)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TraceBuilder::new(universe);
    for _ in 0..len {
        let u: f64 = rng.gen();
        let tenant = cum.partition_point(|&c| c < u).min(specs.len() - 1);
        let local = gens[tenant].next_page();
        builder.push(PageId(offsets[tenant] + local));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(8, 3.0, AccessPattern::Zipf { s: 1.0 }),
            TenantSpec::new(4, 1.0, AccessPattern::Cycle { len: 4 }),
        ]
    }

    #[test]
    fn trace_shape_and_ownership() {
        let t = generate_multi_tenant(&specs(), 1000, 1);
        assert_eq!(t.len(), 1000);
        assert_eq!(t.universe().num_users(), 2);
        assert_eq!(t.universe().num_pages(), 12);
        // Every request's owner is consistent (Trace::new validates).
        for (_, r) in t.iter() {
            if r.page.0 < 8 {
                assert_eq!(r.user.0, 0);
            } else {
                assert_eq!(r.user.0, 1);
            }
        }
    }

    #[test]
    fn arrival_rates_respected() {
        let t = generate_multi_tenant(&specs(), 40_000, 2);
        let counts = t.request_counts_per_user();
        let frac = counts[0] as f64 / t.len() as f64;
        assert!((frac - 0.75).abs() < 0.02, "tenant 0 fraction {frac}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_multi_tenant(&specs(), 500, 7);
        let b = generate_multi_tenant(&specs(), 500, 7);
        assert_eq!(a.requests(), b.requests());
        let c = generate_multi_tenant(&specs(), 500, 8);
        assert_ne!(a.requests(), c.requests());
    }

    #[test]
    fn single_tenant_mixer_matches_pattern() {
        let t = generate_multi_tenant(&[TenantSpec::new(3, 1.0, AccessPattern::Scan)], 6, 0);
        let pages: Vec<u32> = t.requests().iter().map(|r| r.page.0).collect();
        assert_eq!(pages, vec![0, 1, 2, 0, 1, 2]);
    }
}
