//! The §4 adaptive adversary: always request the page the online
//! algorithm is missing.
//!
//! Instance: `n` users, one page each, cache size `k = n − 1`. From time
//! `n − 1` on, exactly one page is missing from the online algorithm's
//! cache; the adversary requests it, forcing a miss (and an eviction)
//! *every step*. The recorded sequence is then handed to the offline
//! batch algorithm (`occ_offline::batch_offline`) whose cost is a
//! factor `Ω(n)^β` smaller — Theorem 1.4.

use occ_sim::{
    EngineCtx, PageId, ReplacementPolicy, Request, RequestSource, SimResult, Simulator, Trace,
    Universe,
};

/// The adaptive missing-page adversary; also records the sequence it
/// emitted so offline algorithms can be run on it afterwards.
pub struct LowerBoundAdversary {
    universe: Universe,
    remaining: u64,
    emitted: Vec<PageId>,
}

impl LowerBoundAdversary {
    /// Adversary over `n` single-page users, emitting `t` requests.
    pub fn new(n: u32, t: u64) -> Self {
        assert!(n >= 2, "need at least two users");
        LowerBoundAdversary {
            universe: Universe::uniform(n, 1),
            remaining: t,
            emitted: Vec::with_capacity(t as usize),
        }
    }

    /// The sequence emitted so far, as a replayable trace.
    pub fn recorded_trace(&self) -> Trace {
        let mut b = occ_sim::TraceBuilder::new(self.universe.clone());
        for &p in &self.emitted {
            b.push(p);
        }
        b.build()
    }
}

impl RequestSource for LowerBoundAdversary {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn next_request(&mut self, ctx: &EngineCtx) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // The lowest-id page not currently cached. Until the cache fills
        // this walks pages 0, 1, …; afterwards it is *the* missing page.
        let n = self.universe.num_pages();
        let page = (0..n)
            .map(PageId)
            .find(|&p| !ctx.cache.contains(p))
            .expect("cache size n−1 < n pages: some page is missing");
        self.emitted.push(page);
        Some(self.universe.request(page))
    }
}

/// Run `policy` against the adversary (`n` users, `t` requests, cache
/// `n − 1`) and return the online result together with the recorded
/// sequence.
pub fn run_lower_bound<P: ReplacementPolicy>(policy: &mut P, n: u32, t: u64) -> (SimResult, Trace) {
    let mut adversary = LowerBoundAdversary::new(n, t);
    let result = Simulator::new((n - 1) as usize).run_source(policy, &mut adversary);
    let trace = adversary.recorded_trace();
    (result, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_baselines::Lru;

    #[test]
    fn every_request_misses_after_warmup() {
        let (result, trace) = run_lower_bound(&mut Lru::new(), 8, 400);
        assert_eq!(result.steps, 400);
        assert_eq!(trace.len(), 400);
        // All requests are misses by construction.
        assert_eq!(result.total_misses(), 400);
        assert_eq!(result.stats.total_hits(), 0);
    }

    #[test]
    fn recorded_trace_replays_identically() {
        let (result, trace) = run_lower_bound(&mut Lru::new(), 6, 200);
        // Replaying the recorded trace against a fresh LRU reproduces the
        // same misses (the adversary is deterministic given the policy).
        let mut lru = Lru::new();
        let replay = Simulator::new(5).run(&mut lru, &trace);
        assert_eq!(replay.miss_vector(), result.miss_vector());
    }

    #[test]
    fn works_against_any_policy() {
        use occ_baselines::{Fifo, Marking};
        for (name, result) in [
            ("fifo", run_lower_bound(&mut Fifo::new(), 7, 210).0),
            ("marking", run_lower_bound(&mut Marking::new(), 7, 210).0),
        ] {
            assert_eq!(result.total_misses(), 210, "{name} must miss everything");
        }
    }

    #[test]
    fn offline_batch_is_far_cheaper() {
        use occ_offline::batch_offline;
        let n = 15u32;
        let t = 3000u64;
        let (online, trace) = run_lower_bound(&mut Lru::new(), n, t);
        let offline = batch_offline(&trace, (n - 1) as usize);
        let online_total: u64 = online.miss_vector().iter().sum();
        let offline_total: u64 = offline.misses.iter().sum();
        // Online misses everything; offline ≤ T/⌊(n−1)/2⌋ + 1.
        assert_eq!(online_total, t);
        assert!(
            offline_total <= t / ((n as u64 - 1) / 2) + 1,
            "offline {offline_total}"
        );
        assert!(online_total > offline_total * 5);
    }
}
