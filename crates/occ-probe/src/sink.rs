//! A streaming JSONL event sink.
//!
//! [`EventLog`](occ_sim::EventLog) keeps events in memory — fine for
//! tests and short traces, unbounded for long ones (the engine's
//! `event_capacity` option caps it, but then old events are lost). For
//! full-fidelity capture of arbitrarily long runs, [`JsonlSink`] streams
//! one JSON object per event to any [`io::Write`] as the run progresses:
//! memory use is one line's buffer regardless of trace length, and the
//! output is greppable / line-parseable without loading the whole file.
//!
//! I/O errors are *sticky*: after the first failure the sink stops
//! writing (hooks become cheap no-ops) and the error is reported once at
//! the end via [`JsonlSink::error`], rather than panicking inside the
//! engine loop or spamming one error per remaining event.

use occ_sim::engine::EngineCtx;
use occ_sim::ids::{PageId, Time, UserId};
use occ_sim::probe::Recorder;
use std::io::{self, Write};

/// Streams one JSON line per engine event to a writer.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer. Callers that hand in a raw `File` should wrap it
    /// in a `BufWriter` first — the sink writes one small line at a
    /// time.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error hit, if any (writing stopped there).
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flush the writer and tear down, returning it — or the sticky
    /// error if one occurred at any point.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    #[inline]
    fn emit(&mut self, args: std::fmt::Arguments<'_>) {
        if self.error.is_some() {
            return;
        }
        match self.out.write_fmt(args) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

impl<W: Write> Recorder for JsonlSink<W> {
    fn record_hit(&mut self, _ctx: &EngineCtx, t: Time, page: PageId, user: UserId) {
        self.emit(format_args!(
            "{{\"t\":{t},\"kind\":\"hit\",\"page\":{},\"user\":{}}}\n",
            page.0, user.0
        ));
    }

    fn record_insert(&mut self, _ctx: &EngineCtx, t: Time, page: PageId, user: UserId) {
        self.emit(format_args!(
            "{{\"t\":{t},\"kind\":\"insert\",\"page\":{},\"user\":{}}}\n",
            page.0, user.0
        ));
    }

    fn record_eviction(
        &mut self,
        _ctx: &EngineCtx,
        t: Time,
        page: PageId,
        user: UserId,
        victim: PageId,
        victim_user: UserId,
    ) {
        self.emit(format_args!(
            "{{\"t\":{t},\"kind\":\"evict\",\"page\":{},\"user\":{},\"victim\":{},\"victim_user\":{}}}\n",
            page.0, user.0, victim.0, victim_user.0
        ));
    }

    fn record_flush_eviction(&mut self, page: PageId, user: UserId) {
        self.emit(format_args!(
            "{{\"kind\":\"flush_evict\",\"page\":{},\"user\":{}}}\n",
            page.0, user.0
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use occ_baselines::Lru;
    use occ_sim::prelude::*;

    #[test]
    fn every_event_is_one_parseable_line() {
        let u = Universe::uniform(2, 4);
        let pages: Vec<u32> = (0..100u32).map(|i| (i * 3 + 1) % 8).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let mut sink = JsonlSink::new(Vec::new());
        let result = Simulator::new(3).flush_at_end(true).run_recorded(
            &mut Lru::default(),
            &trace,
            &mut sink,
        );
        // One line per request, plus one per page flushed at the end.
        let flushed = result.final_cache.len() as u64;
        let lines = sink.lines();
        assert_eq!(lines, result.steps + flushed);
        let buf = sink.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count() as u64, lines);
        let mut evicts = 0u64;
        for line in text.lines() {
            let v = Json::parse(line).expect("line parses");
            let kind = v.get("kind").and_then(Json::as_str).unwrap();
            assert!(["hit", "insert", "evict", "flush_evict"].contains(&kind));
            if kind == "evict" {
                assert!(v.get("victim").and_then(Json::as_u64).is_some());
                evicts += 1;
            }
        }
        assert_eq!(evicts + flushed, result.stats.total_evictions());
    }

    #[test]
    fn errors_are_sticky_not_fatal() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 3, 0, 1]);
        // `write_fmt` issues several `write` calls per line; whichever
        // one hits the failure, the sink must absorb it (the run
        // completes), stop counting lines, and surface it at the end.
        let mut sink = JsonlSink::new(FailAfter(2));
        let result = Simulator::new(2).run_recorded(&mut Lru::default(), &trace, &mut sink);
        assert_eq!(result.steps, 6); // the failure never reached the engine
        assert!(sink.lines() < 6);
        assert!(sink.error().is_some());
        assert!(sink.finish().is_err());
    }
}
