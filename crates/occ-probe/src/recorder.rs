//! Ready-made [`Recorder`] implementations.
//!
//! [`MetricsRecorder`] is the workhorse behind `occ observe`: counters
//! for every engine decision, per-user eviction tallies, and a
//! [`LogHistogram`] of per-request service latency (it sets
//! [`Recorder::TIMED`], so the engine samples a monotonic clock around
//! each request).

use crate::histogram::LogHistogram;
use crate::json::Json;
use occ_sim::engine::EngineCtx;
use occ_sim::error::{FaultCounters, RequestFault};
use occ_sim::ids::{PageId, Time, UserId};
use occ_sim::probe::Recorder;

/// Counters + latency histogram for a whole run.
#[derive(Clone, Debug, Default)]
pub struct MetricsRecorder {
    hits: u64,
    inserts: u64,
    evictions: u64,
    flush_evictions: u64,
    evictions_by_user: Vec<u64>,
    faults: FaultCounters,
    latency_ns: LogHistogram,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bump_user(&mut self, user: UserId) {
        let i = user.index();
        if i >= self.evictions_by_user.len() {
            self.evictions_by_user.resize(i + 1, 0);
        }
        self.evictions_by_user[i] += 1;
    }

    /// Requests served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses that filled free space (no eviction).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Misses that evicted a victim (excludes flush evictions).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Evictions charged by the end-of-run flush convention.
    pub fn flush_evictions(&self) -> u64 {
        self.flush_evictions
    }

    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.hits + self.inserts + self.evictions
    }

    /// Eviction count per victim's owner (flush included), indexed by
    /// user id; users beyond the highest evicted-from id are omitted.
    pub fn evictions_by_user(&self) -> &[u64] {
        &self.evictions_by_user
    }

    /// Per-request service latency (only populated when the engine runs
    /// with this recorder attached, since `TIMED = true`).
    pub fn latency_ns(&self) -> &LogHistogram {
        &self.latency_ns
    }

    /// Faulty/dropped records observed via [`Recorder::record_fault`]
    /// (only populated by the checked engine paths; `quarantined_users`
    /// is left to the engine's [`FaultHandler`], which owns membership).
    ///
    /// [`FaultHandler`]: occ_sim::FaultHandler
    pub fn faults(&self) -> &FaultCounters {
        &self.faults
    }

    /// Fold another recorder's observations into this one.
    pub fn merge(&mut self, other: &MetricsRecorder) {
        self.hits += other.hits;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.flush_evictions += other.flush_evictions;
        if self.evictions_by_user.len() < other.evictions_by_user.len() {
            self.evictions_by_user
                .resize(other.evictions_by_user.len(), 0);
        }
        for (a, &b) in self
            .evictions_by_user
            .iter_mut()
            .zip(&other.evictions_by_user)
        {
            *a += b;
        }
        self.faults.merge(&other.faults);
        self.latency_ns.merge(&other.latency_ns);
    }

    /// The recorder's counters and histogram as a JSON object.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("requests".into(), Json::from_u64(self.requests())),
            ("hits".into(), Json::from_u64(self.hits)),
            ("inserts".into(), Json::from_u64(self.inserts)),
            ("evictions".into(), Json::from_u64(self.evictions)),
            (
                "flush_evictions".into(),
                Json::from_u64(self.flush_evictions),
            ),
            (
                "evictions_by_user".into(),
                Json::Arr(
                    self.evictions_by_user
                        .iter()
                        .map(|&n| Json::from_u64(n))
                        .collect(),
                ),
            ),
            (
                "faults".into(),
                Json::Obj(vec![
                    (
                        "page_out_of_range".into(),
                        Json::from_u64(self.faults.page_out_of_range),
                    ),
                    (
                        "owner_mismatch".into(),
                        Json::from_u64(self.faults.owner_mismatch),
                    ),
                    (
                        "quarantined_drops".into(),
                        Json::from_u64(self.faults.quarantined_drops),
                    ),
                    ("total".into(), Json::from_u64(self.faults.total_records())),
                ]),
            ),
            ("latency_ns".into(), self.latency_ns.to_json_value()),
        ])
    }
}

impl Recorder for MetricsRecorder {
    const TIMED: bool = true;

    fn record_hit(&mut self, _ctx: &EngineCtx, _t: Time, _page: PageId, _user: UserId) {
        self.hits += 1;
    }

    fn record_insert(&mut self, _ctx: &EngineCtx, _t: Time, _page: PageId, _user: UserId) {
        self.inserts += 1;
    }

    fn record_eviction(
        &mut self,
        _ctx: &EngineCtx,
        _t: Time,
        _page: PageId,
        _user: UserId,
        _victim: PageId,
        victim_user: UserId,
    ) {
        self.evictions += 1;
        self.bump_user(victim_user);
    }

    fn record_flush_eviction(&mut self, _page: PageId, user: UserId) {
        self.flush_evictions += 1;
        self.bump_user(user);
    }

    fn record_latency_ns(&mut self, _t: Time, ns: u64) {
        self.latency_ns.record(ns);
    }

    fn record_fault(&mut self, fault: &RequestFault) {
        self.faults.count(fault.kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_baselines::Lru;
    use occ_sim::prelude::*;

    #[test]
    fn counters_mirror_sim_stats() {
        let u = Universe::uniform(2, 8);
        let pages: Vec<u32> = (0..400u32).map(|i| (i * 13 + 5) % 16).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let mut rec = MetricsRecorder::new();
        let result = Simulator::new(6).run_recorded(&mut Lru::default(), &trace, &mut rec);
        assert_eq!(rec.hits(), result.stats.total_hits());
        assert_eq!(rec.inserts() + rec.evictions(), result.stats.total_misses());
        assert_eq!(rec.evictions(), result.stats.total_evictions());
        assert_eq!(rec.requests(), result.steps);
        assert_eq!(rec.latency_ns().count(), result.steps);
        let by_user: Vec<u64> = rec.evictions_by_user().to_vec();
        assert_eq!(by_user.iter().sum::<u64>(), rec.evictions());
        assert_eq!(rec.flush_evictions(), 0);
    }

    #[test]
    fn flush_evictions_counted_separately() {
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2]);
        let mut rec = MetricsRecorder::new();
        let result = Simulator::new(4).flush_at_end(true).run_recorded(
            &mut Lru::default(),
            &trace,
            &mut rec,
        );
        assert_eq!(rec.evictions(), 0);
        assert_eq!(rec.flush_evictions(), 3);
        assert_eq!(result.stats.total_evictions(), 3);
        assert_eq!(rec.evictions_by_user(), &[3]);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = MetricsRecorder::new();
        let mut b = MetricsRecorder::new();
        a.hits = 2;
        a.bump_user(UserId(0));
        b.hits = 3;
        b.bump_user(UserId(2));
        a.merge(&b);
        assert_eq!(a.hits(), 5);
        assert_eq!(a.evictions_by_user(), &[1, 0, 1]);
    }

    #[test]
    fn json_has_required_keys() {
        let rec = MetricsRecorder::new();
        let v = rec.to_json_value();
        for key in [
            "requests",
            "hits",
            "inserts",
            "evictions",
            "flush_evictions",
            "evictions_by_user",
            "faults",
            "latency_ns",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn checked_runs_stream_faults_into_the_recorder() {
        use occ_sim::error::FaultPolicy;

        let u = Universe::uniform(2, 2);
        let mut eng =
            SteppingEngine::new(2, u.clone(), Lru::default()).with_recorder(MetricsRecorder::new());
        let mut h = FaultHandler::new(FaultPolicy::SkipAndCount, 2);
        eng.step_checked(u.request(PageId(0)), &mut h).unwrap();
        let corrupt = Request {
            page: PageId(99),
            user: UserId(0),
        };
        assert_eq!(eng.step_checked(corrupt, &mut h).unwrap(), None);
        let wrong_owner = Request {
            page: PageId(0),
            user: UserId(1),
        };
        assert_eq!(eng.step_checked(wrong_owner, &mut h).unwrap(), None);

        let faults = eng.recorder().faults();
        assert_eq!(faults.page_out_of_range, 1);
        assert_eq!(faults.owner_mismatch, 1);
        assert_eq!(faults, h.counters(), "recorder mirrors the handler");
        let v = eng.recorder().to_json_value();
        assert_eq!(
            v.get("faults").unwrap().get("total").unwrap().as_u64(),
            Some(2)
        );
    }
}
