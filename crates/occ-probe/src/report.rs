//! The `occ observe` report: a single JSON document tying together run
//! summary, recorder metrics, and (for the paper's algorithm) the dual
//! trajectory.
//!
//! The report is the interchange format between `occ observe` (which
//! emits it), `occ report` (which renders it as an aligned table), and
//! the CI smoke test (which validates it). [`ObserveReport::validate`]
//! checks the key contract so a report produced by one version is
//! rejected loudly — not misread — by another.

use crate::json::Json;
use occ_analysis::{fnum, Table};

/// Report schema version (bump when keys change shape).
///
/// 2: embedded `latency_ns` histograms gained a derived `mean` field
/// (alongside `count`/`min`/`max`) so series windows are plottable
/// without quantile reconstruction.
pub const REPORT_SCHEMA: u64 = 2;

/// Keys every report must carry at the top level.
pub const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "policy",
    "capacity",
    "requests",
    "hits",
    "misses",
    "evictions",
    "miss_rate",
    "metrics",
];

/// A structured `occ observe` run summary.
#[derive(Clone, Debug)]
pub struct ObserveReport {
    /// Policy name as reported by the policy itself.
    pub policy: String,
    /// Cache capacity in pages.
    pub capacity: u64,
    /// Requests served.
    pub requests: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (fetches).
    pub misses: u64,
    /// Evictions charged (including any end-of-run flush).
    pub evictions: u64,
    /// `misses / requests`, `0.0` for an empty run.
    pub miss_rate: f64,
    /// `Σ_i f_i(evictions_i)` under the run's cost profile, when one
    /// was in play.
    pub total_cost: Option<f64>,
    /// [`MetricsRecorder`](crate::MetricsRecorder) counters and latency
    /// histogram, as produced by its `to_json_value`.
    pub metrics: Json,
    /// [`DualTrace`](crate::DualTrace) trajectory, for the convex
    /// policy.
    pub dual: Option<Json>,
}

impl ObserveReport {
    /// Serialize to the schema-stamped JSON object.
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::from_u64(REPORT_SCHEMA)),
            ("policy".into(), Json::Str(self.policy.clone())),
            ("capacity".into(), Json::from_u64(self.capacity)),
            ("requests".into(), Json::from_u64(self.requests)),
            ("hits".into(), Json::from_u64(self.hits)),
            ("misses".into(), Json::from_u64(self.misses)),
            ("evictions".into(), Json::from_u64(self.evictions)),
            ("miss_rate".into(), Json::Num(self.miss_rate)),
            ("metrics".into(), self.metrics.clone()),
        ];
        if let Some(c) = self.total_cost {
            fields.push(("total_cost".into(), Json::Num(c)));
        }
        if let Some(d) = &self.dual {
            fields.push(("dual".into(), d.clone()));
        }
        Json::Obj(fields)
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Check that `v` is a structurally valid report: all
    /// [`REQUIRED_KEYS`] present, a matching schema stamp, and counters
    /// that add up (`hits + misses = requests`).
    pub fn validate(v: &Json) -> Result<(), String> {
        crate::json::check_schema_stamp(v, REPORT_SCHEMA, "report").map_err(|e| {
            if e.contains("unsupported") {
                format!("{e}; re-run `occ observe` with a matching build")
            } else {
                e
            }
        })?;
        for key in REQUIRED_KEYS {
            if v.get(key).is_none() {
                return Err(format!("report missing required key '{key}'"));
            }
        }
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("'{key}' must be an unsigned integer"))
        };
        let (requests, hits, misses) = (num("requests")?, num("hits")?, num("misses")?);
        if hits.checked_add(misses) != Some(requests) {
            return Err(format!(
                "counters disagree: hits {hits} + misses {misses} != requests {requests}"
            ));
        }
        if v.get("metrics").and_then(|m| m.get("latency_ns")).is_none() {
            return Err("'metrics' must contain 'latency_ns'".into());
        }
        Ok(())
    }

    /// Reconstruct from a parsed report (validates first).
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        Self::validate(v)?;
        let num = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        Ok(ObserveReport {
            policy: v
                .get("policy")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            capacity: num("capacity"),
            requests: num("requests"),
            hits: num("hits"),
            misses: num("misses"),
            evictions: num("evictions"),
            miss_rate: v.get("miss_rate").and_then(Json::as_f64).unwrap_or(0.0),
            total_cost: v.get("total_cost").and_then(Json::as_f64),
            metrics: v.get("metrics").cloned().unwrap_or(Json::Null),
            dual: v.get("dual").cloned(),
        })
    }

    /// Parse and validate a report from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Render the report as aligned text tables (the `occ report`
    /// output).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let mut summary = Table::new(vec!["metric", "value"]);
        summary.row(vec!["policy".to_string(), self.policy.clone()]);
        summary.row(vec!["capacity".to_string(), self.capacity.to_string()]);
        summary.row(vec!["requests".to_string(), self.requests.to_string()]);
        summary.row(vec!["hits".to_string(), self.hits.to_string()]);
        summary.row(vec!["misses".to_string(), self.misses.to_string()]);
        summary.row(vec!["evictions".to_string(), self.evictions.to_string()]);
        summary.row(vec!["miss_rate".to_string(), fnum(self.miss_rate)]);
        if let Some(c) = self.total_cost {
            summary.row(vec!["total_cost".to_string(), fnum(c)]);
        }
        out.push_str(&summary.to_markdown());

        if let Some(faults) = self.metrics.get("faults") {
            let count = |key: &str| faults.get(key).and_then(Json::as_u64).unwrap_or(0);
            if count("total") > 0 {
                let mut t = Table::new(vec!["fault", "records"]);
                t.row(vec![
                    "page-out-of-range".to_string(),
                    count("page_out_of_range").to_string(),
                ]);
                t.row(vec![
                    "owner-mismatch".to_string(),
                    count("owner_mismatch").to_string(),
                ]);
                t.row(vec![
                    "quarantined-drops".to_string(),
                    count("quarantined_drops").to_string(),
                ]);
                t.row(vec!["total".to_string(), count("total").to_string()]);
                out.push('\n');
                out.push_str(&t.to_markdown());
            }
        }

        if let Some(lat) = self.metrics.get("latency_ns") {
            if let Ok(h) = crate::LogHistogram::from_json_value(lat) {
                if !h.is_empty() {
                    let mut t = Table::new(vec!["latency_ns", "value"]);
                    t.row(vec!["count".to_string(), h.count().to_string()]);
                    t.row(vec!["mean".to_string(), fnum(h.mean())]);
                    t.row(vec!["p50".to_string(), h.p50().to_string()]);
                    t.row(vec!["p90".to_string(), h.p90().to_string()]);
                    t.row(vec!["p99".to_string(), h.p99().to_string()]);
                    t.row(vec!["p999".to_string(), h.p999().to_string()]);
                    t.row(vec!["max".to_string(), h.max().to_string()]);
                    out.push('\n');
                    out.push_str(&t.to_markdown());
                }
            }
        }

        if let Some(dual) = &self.dual {
            if let Some(samples) = dual.get("samples").and_then(Json::as_array) {
                let mut t = Table::new(vec!["t", "dual_offset", "evictions", "primal_cost"]);
                for s in samples {
                    t.row(vec![
                        s.get("t").and_then(Json::as_u64).unwrap_or(0).to_string(),
                        fnum(s.get("dual_offset").and_then(Json::as_f64).unwrap_or(0.0)),
                        s.get("total_evictions")
                            .and_then(Json::as_u64)
                            .unwrap_or(0)
                            .to_string(),
                        fnum(s.get("primal_cost").and_then(Json::as_f64).unwrap_or(0.0)),
                    ]);
                }
                if !t.is_empty() {
                    out.push('\n');
                    out.push_str(&t.to_markdown());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRecorder;

    fn sample_report() -> ObserveReport {
        ObserveReport {
            policy: "lru".into(),
            capacity: 64,
            requests: 100,
            hits: 60,
            misses: 40,
            evictions: 30,
            miss_rate: 0.4,
            total_cost: Some(900.0),
            metrics: MetricsRecorder::new().to_json_value(),
            dual: None,
        }
    }

    #[test]
    fn round_trip_and_validate() {
        let r = sample_report();
        let text = r.to_json();
        let v = Json::parse(&text).unwrap();
        ObserveReport::validate(&v).unwrap();
        let back = ObserveReport::from_json(&text).unwrap();
        assert_eq!(back.policy, "lru");
        assert_eq!(back.requests, 100);
        assert_eq!(back.total_cost, Some(900.0));
    }

    #[test]
    fn validate_rejects_missing_keys_and_bad_sums() {
        assert!(ObserveReport::validate(&Json::parse("{}").unwrap()).is_err());
        let mut r = sample_report();
        r.hits = 61; // 61 + 40 != 100
        let v = Json::parse(&r.to_json()).unwrap();
        assert!(ObserveReport::validate(&v).is_err());
    }

    #[test]
    fn unknown_schema_is_rejected_before_key_checks() {
        // A future-version report: wrong schema AND none of today's keys.
        // The error must name the schema, not complain about keys the
        // future format legitimately dropped.
        let future = format!(r#"{{"schema": {}}}"#, REPORT_SCHEMA + 5);
        let err = ObserveReport::validate(&Json::parse(&future).unwrap()).unwrap_err();
        assert!(
            err.contains(&format!("schema {} unsupported", REPORT_SCHEMA + 5)),
            "got: {err}"
        );
        assert!(!err.contains("missing required key"), "got: {err}");
        // A fractional or missing stamp is also a schema error.
        let err = ObserveReport::validate(&Json::parse(r#"{"schema": 1.5}"#).unwrap()).unwrap_err();
        assert!(err.contains("schema"), "got: {err}");
        let err =
            ObserveReport::validate(&Json::parse(r#"{"policy": "lru"}"#).unwrap()).unwrap_err();
        assert!(err.contains("schema"), "got: {err}");
    }

    #[test]
    fn table_renders_fault_section_when_nonzero() {
        let mut r = sample_report();
        // No faults → no section.
        assert!(!r.to_table().contains("page-out-of-range"));
        r.metrics = Json::Obj(vec![(
            "faults".into(),
            Json::Obj(vec![
                ("page_out_of_range".into(), Json::from_u64(3)),
                ("owner_mismatch".into(), Json::from_u64(1)),
                ("quarantined_drops".into(), Json::from_u64(0)),
                ("total".into(), Json::from_u64(4)),
            ]),
        )]);
        let text = r.to_table();
        assert!(text.contains("page-out-of-range"));
        assert!(text.contains("owner-mismatch"));
    }

    #[test]
    fn table_renders_summary() {
        let text = sample_report().to_table();
        assert!(text.contains("miss_rate"));
        assert!(text.contains("lru"));
    }
}
