//! On-disk JSON encoding of [`EngineSnapshot`].
//!
//! The in-memory checkpoint lives in `occ-sim`; this module gives it a
//! durable form for `occ observe --checkpoint` / `occ resume`. The
//! encoding must be *lossless* — a resumed run is asserted byte-identical
//! to an uninterrupted one — which rules out the naive number encoding:
//! [`Json`] stores numbers as `f64`, so `u64` sequence counters and RNG
//! words above 2^53 would round, and `f64` dual offsets would be at the
//! mercy of decimal printing. Instead every `u64` is written as a decimal
//! *string* and every `f64` as the decimal string of its IEEE-754 bit
//! pattern, so round-tripping preserves exact bits (including NaN
//! payloads, infinities and `-0.0`).
//!
//! The document leads with a `version` field, checked before anything
//! else on read: an unknown version is rejected as
//! [`SnapshotError::UnsupportedVersion`], never mis-parsed.

use crate::json::Json;
use occ_sim::error::{FaultCounters, SnapshotError};
use occ_sim::ids::{PageId, UserId};
use occ_sim::snapshot::{EngineSnapshot, PolicyState, StateValue};
use occ_sim::stats::UserStats;

/// Encode a snapshot as a compact JSON string.
pub fn snapshot_to_json(snap: &EngineSnapshot) -> String {
    snapshot_to_json_value(snap).to_json()
}

/// Encode a snapshot as a JSON value.
pub fn snapshot_to_json_value(snap: &EngineSnapshot) -> Json {
    let stats = snap
        .stats
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("hits".into(), u64_str(s.hits)),
                ("misses".into(), u64_str(s.misses)),
                ("evictions".into(), u64_str(s.evictions)),
            ])
        })
        .collect();
    let policy = snap
        .policy
        .fields()
        .iter()
        .map(|(k, v)| {
            let (tag, value) = match v {
                StateValue::U64(x) => ("u64", u64_str(*x)),
                StateValue::F64(x) => ("f64", f64_bits(*x)),
                StateValue::U64s(xs) => {
                    ("u64s", Json::Arr(xs.iter().map(|&x| u64_str(x)).collect()))
                }
                StateValue::F64s(xs) => {
                    ("f64s", Json::Arr(xs.iter().map(|&x| f64_bits(x)).collect()))
                }
                StateValue::Text(s) => ("text", Json::Str(s.clone())),
            };
            Json::Obj(vec![
                ("key".into(), Json::Str(k.clone())),
                ("type".into(), Json::Str(tag.into())),
                ("value".into(), value),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("version".into(), Json::from_u64(snap.version)),
        ("time".into(), u64_str(snap.time)),
        ("capacity".into(), Json::from_u64(snap.capacity as u64)),
        ("num_users".into(), Json::from_u64(snap.num_users as u64)),
        (
            "owners".into(),
            Json::Arr(
                snap.owners
                    .iter()
                    .map(|u| Json::from_u64(u.0 as u64))
                    .collect(),
            ),
        ),
        (
            "cache_pages".into(),
            Json::Arr(
                snap.cache_pages
                    .iter()
                    .map(|p| Json::from_u64(p.0 as u64))
                    .collect(),
            ),
        ),
        ("stats".into(), Json::Arr(stats)),
        ("policy_name".into(), Json::Str(snap.policy_name.clone())),
        ("policy".into(), Json::Arr(policy)),
        (
            "faults".into(),
            Json::Obj(vec![
                (
                    "page_out_of_range".into(),
                    u64_str(snap.faults.page_out_of_range),
                ),
                ("owner_mismatch".into(), u64_str(snap.faults.owner_mismatch)),
                (
                    "quarantined_drops".into(),
                    u64_str(snap.faults.quarantined_drops),
                ),
                (
                    "quarantined_users".into(),
                    u64_str(snap.faults.quarantined_users),
                ),
            ]),
        ),
        (
            "quarantined".into(),
            Json::Arr(
                snap.quarantined
                    .iter()
                    .map(|u| Json::from_u64(u.0 as u64))
                    .collect(),
            ),
        ),
    ])
}

/// Parse and decode a snapshot from JSON text.
pub fn snapshot_from_json(text: &str) -> Result<EngineSnapshot, SnapshotError> {
    let v = Json::parse(text)
        .map_err(|e| SnapshotError::Corrupt(format!("snapshot is not valid JSON: {e}")))?;
    snapshot_from_json_value(&v)
}

/// Decode a snapshot from a JSON value. The `version` field is checked
/// before any other field is touched.
pub fn snapshot_from_json_value(v: &Json) -> Result<EngineSnapshot, SnapshotError> {
    let version = v
        .get("version")
        .ok_or_else(|| SnapshotError::MissingField("version".into()))?
        .as_u64()
        .ok_or_else(|| SnapshotError::Corrupt("version is not an unsigned integer".into()))?;
    if version != occ_sim::SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            expected: occ_sim::SNAPSHOT_VERSION,
        });
    }
    let time = read_u64(v, "time")?;
    let capacity = read_plain_u64(v, "capacity")? as usize;
    let num_users = read_u32(v, "num_users")?;
    let owners = read_id_array(v, "owners")?
        .into_iter()
        .map(UserId)
        .collect();
    let cache_pages = read_id_array(v, "cache_pages")?
        .into_iter()
        .map(PageId)
        .collect();
    let stats = read_array(v, "stats")?
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Ok(UserStats {
                hits: read_u64(s, "hits").map_err(|e| nested(&format!("stats[{i}]"), e))?,
                misses: read_u64(s, "misses").map_err(|e| nested(&format!("stats[{i}]"), e))?,
                evictions: read_u64(s, "evictions")
                    .map_err(|e| nested(&format!("stats[{i}]"), e))?,
            })
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let policy_name = read_str(v, "policy_name")?.to_string();
    let mut policy = PolicyState::new();
    for (i, f) in read_array(v, "policy")?.iter().enumerate() {
        let at = format!("policy[{i}]");
        let key = read_str(f, "key").map_err(|e| nested(&at, e))?;
        let tag = read_str(f, "type").map_err(|e| nested(&at, e))?;
        let value = f
            .get("value")
            .ok_or_else(|| SnapshotError::MissingField(format!("{at}.value")))?;
        let value = match tag {
            "u64" => StateValue::U64(parse_u64(value, &at)?),
            "f64" => StateValue::F64(parse_f64_bits(value, &at)?),
            "u64s" => StateValue::U64s(
                value
                    .as_array()
                    .ok_or_else(|| SnapshotError::Corrupt(format!("{at}.value is not an array")))?
                    .iter()
                    .map(|x| parse_u64(x, &at))
                    .collect::<Result<_, _>>()?,
            ),
            "f64s" => StateValue::F64s(
                value
                    .as_array()
                    .ok_or_else(|| SnapshotError::Corrupt(format!("{at}.value is not an array")))?
                    .iter()
                    .map(|x| parse_f64_bits(x, &at))
                    .collect::<Result<_, _>>()?,
            ),
            "text" => StateValue::Text(
                value
                    .as_str()
                    .ok_or_else(|| SnapshotError::Corrupt(format!("{at}.value is not a string")))?
                    .to_string(),
            ),
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "{at} has unknown type tag '{other}'"
                )))
            }
        };
        policy.set(key, value);
    }
    let fv = v
        .get("faults")
        .ok_or_else(|| SnapshotError::MissingField("faults".into()))?;
    let faults = FaultCounters {
        page_out_of_range: read_u64(fv, "page_out_of_range")?,
        owner_mismatch: read_u64(fv, "owner_mismatch")?,
        quarantined_drops: read_u64(fv, "quarantined_drops")?,
        quarantined_users: read_u64(fv, "quarantined_users")?,
    };
    let quarantined = read_id_array(v, "quarantined")?
        .into_iter()
        .map(UserId)
        .collect();
    Ok(EngineSnapshot {
        version,
        time,
        capacity,
        num_users,
        owners,
        cache_pages,
        stats,
        policy_name,
        policy,
        faults,
        quarantined,
    })
}

fn u64_str(v: u64) -> Json {
    Json::Str(v.to_string())
}

fn f64_bits(v: f64) -> Json {
    Json::Str(v.to_bits().to_string())
}

fn nested(at: &str, e: SnapshotError) -> SnapshotError {
    match e {
        SnapshotError::MissingField(k) => SnapshotError::MissingField(format!("{at}.{k}")),
        SnapshotError::Corrupt(m) => SnapshotError::Corrupt(format!("{at}: {m}")),
        other => other,
    }
}

fn parse_u64(v: &Json, what: &str) -> Result<u64, SnapshotError> {
    v.as_str()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| {
            SnapshotError::Corrupt(format!("{what} is not a u64-in-a-string: {}", v.to_json()))
        })
}

fn parse_f64_bits(v: &Json, what: &str) -> Result<f64, SnapshotError> {
    parse_u64(v, what).map(f64::from_bits)
}

fn read_u64(v: &Json, key: &str) -> Result<u64, SnapshotError> {
    let field = v
        .get(key)
        .ok_or_else(|| SnapshotError::MissingField(key.into()))?;
    parse_u64(field, key)
}

fn read_plain_u64(v: &Json, key: &str) -> Result<u64, SnapshotError> {
    v.get(key)
        .ok_or_else(|| SnapshotError::MissingField(key.into()))?
        .as_u64()
        .ok_or_else(|| SnapshotError::Corrupt(format!("{key} is not an unsigned integer")))
}

fn read_u32(v: &Json, key: &str) -> Result<u32, SnapshotError> {
    let x = read_plain_u64(v, key)?;
    u32::try_from(x).map_err(|_| SnapshotError::Corrupt(format!("{key} = {x} overflows u32")))
}

fn read_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, SnapshotError> {
    v.get(key)
        .ok_or_else(|| SnapshotError::MissingField(key.into()))?
        .as_str()
        .ok_or_else(|| SnapshotError::Corrupt(format!("{key} is not a string")))
}

fn read_array<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], SnapshotError> {
    v.get(key)
        .ok_or_else(|| SnapshotError::MissingField(key.into()))?
        .as_array()
        .ok_or_else(|| SnapshotError::Corrupt(format!("{key} is not an array")))
}

fn read_id_array(v: &Json, key: &str) -> Result<Vec<u32>, SnapshotError> {
    read_array(v, key)?
        .iter()
        .map(|x| {
            x.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| {
                    SnapshotError::Corrupt(format!("{key} entry is not a u32: {}", x.to_json()))
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_baselines::RandomizedMarking;
    use occ_sim::prelude::*;

    fn live_snapshot() -> EngineSnapshot {
        // A real engine mid-run, with RNG words in the policy bag — the
        // values most likely to expose lossy encoding.
        let u = Universe::uniform(3, 4);
        let mut eng = SteppingEngine::new(5, u.clone(), RandomizedMarking::new(0xDEAD_BEEF));
        for i in 0..97u32 {
            eng.step(u.request(PageId((i * 7 + 1) % 12)));
        }
        eng.snapshot().unwrap()
    }

    #[test]
    fn round_trip_is_exact() {
        let snap = live_snapshot();
        let back = snapshot_from_json(&snapshot_to_json(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn extreme_floats_and_counters_survive() {
        let mut snap = live_snapshot();
        snap.policy.set_f64("weird", -0.0);
        snap.policy.set_f64("inf", f64::NEG_INFINITY);
        snap.policy.set_f64("nan", f64::NAN);
        snap.policy.set_u64("big", u64::MAX);
        snap.policy
            .set_f64s("mix", vec![f64::MIN_POSITIVE, 1e300, f64::EPSILON]);
        let back = snapshot_from_json(&snapshot_to_json(&snap)).unwrap();
        // PartialEq on f64 treats NaN != NaN, so compare bits explicitly.
        assert_eq!(
            match back.policy.get("nan").unwrap() {
                StateValue::F64(x) => x.to_bits(),
                _ => panic!(),
            },
            f64::NAN.to_bits()
        );
        assert_eq!(
            back.policy.f64("weird").unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(back.policy.f64("inf").unwrap(), f64::NEG_INFINITY);
        assert_eq!(back.policy.u64("big").unwrap(), u64::MAX);
        assert_eq!(
            back.policy.f64s("mix").unwrap(),
            &[f64::MIN_POSITIVE, 1e300, f64::EPSILON]
        );
    }

    #[test]
    fn unknown_version_is_rejected_before_anything_else() {
        let snap = live_snapshot();
        // Bump the version and gut the rest: the reader must fail on the
        // version, not on the missing/garbled remainder.
        let text = format!(
            r#"{{"version": {}, "time": "not even a number"}}"#,
            SNAPSHOT_VERSION + 3
        );
        let err = snapshot_from_json(&text).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::UnsupportedVersion { found, expected }
                if found == SNAPSHOT_VERSION + 3 && expected == SNAPSHOT_VERSION
        ));
        drop(snap);
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let snap = live_snapshot();
        let good = snapshot_to_json(&snap);
        assert!(matches!(
            snapshot_from_json("{nope").unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        assert!(matches!(
            snapshot_from_json("{}").unwrap_err(),
            SnapshotError::MissingField(f) if f == "version"
        ));
        // Flip the exact-integer time string into a float.
        let bad = good.replace(&format!("\"time\":\"{}\"", snap.time), "\"time\":\"1.5\"");
        assert_ne!(bad, good);
        assert!(matches!(
            snapshot_from_json(&bad).unwrap_err(),
            SnapshotError::Corrupt(m) if m.contains("time")
        ));
    }

    #[test]
    fn decoded_snapshot_restores_into_an_engine() {
        // End-to-end: snapshot → JSON → decode → fresh engine → identical
        // continuation.
        let u = Universe::uniform(3, 4);
        let mut full = SteppingEngine::new(5, u.clone(), RandomizedMarking::new(7));
        let mut head = SteppingEngine::new(5, u.clone(), RandomizedMarking::new(7));
        let reqs: Vec<Request> = (0..200u32)
            .map(|i| u.request(PageId((i * 5 + 2) % 12)))
            .collect();
        for r in &reqs {
            full.step(*r);
        }
        for r in &reqs[..80] {
            head.step(*r);
        }
        let snap = snapshot_from_json(&snapshot_to_json(&head.snapshot().unwrap())).unwrap();
        let mut tail = SteppingEngine::from_snapshot(&snap, RandomizedMarking::new(999)).unwrap();
        for r in &reqs[80..] {
            tail.step(*r);
        }
        assert_eq!(tail.stats(), full.stats());
        assert_eq!(tail.cache().pages(), full.cache().pages());
    }
}
