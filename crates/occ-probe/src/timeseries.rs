//! Windowed time-series telemetry: tumbling-window deltas over a run.
//!
//! End-of-run totals ([`MetricsRecorder`](crate::MetricsRecorder)) hide
//! everything that happens *during* a run — warm-up transients, per-tenant
//! fairness pressure, dual-credit drift. [`WindowedRecorder`] slices the
//! request stream into tumbling windows of a fixed width (by request
//! index) and snapshots a [`WindowDelta`] per window: hit/insert/eviction
//! counters, per-tenant hit/miss/eviction vectors, fault counters, an
//! optional exact [`LogHistogram`] latency delta, and an optionally
//! attached ALG-DISCRETE dual sample ([`DualPoint`]).
//!
//! Deltas are *exact*, not sampled: summed over all windows they equal
//! the whole-run totals bitwise (a property test pins this), because the
//! recorder sees every engine hook and each event lands in exactly one
//! window. Closed windows go into a bounded ring (oldest dropped first),
//! and a streaming loop can [`drain_new`](WindowedRecorder::drain_new)
//! them as they close and hand them to a [`SeriesSink`], which writes a
//! schema-stamped JSONL series: one header line, then one line per
//! window, in O(1) memory no matter how long the run is. The same
//! discipline as the rest of the probe layer applies: the recorder is a
//! [`Recorder`] generic parameter, so the uninstrumented hot path still
//! compiles to the unrecorded code, and sink I/O errors are sticky.
//!
//! Windows are resumable: a run checkpointed at a window boundary and
//! continued with [`WindowedRecorder::starting_at`] produces the same
//! window sequence as an uninterrupted run (per-window state depends only
//! on the events inside the window).

use std::collections::VecDeque;
use std::io::{self, Write};

use crate::histogram::LogHistogram;
use crate::json::{check_schema_stamp, Json};
use occ_sim::engine::EngineCtx;
use occ_sim::error::{FaultCounters, RequestFault};
use occ_sim::ids::{PageId, Time, UserId};
use occ_sim::probe::Recorder;

/// Series schema version, stamped on the JSONL header line (bump when
/// the header or window line shape changes).
pub const SERIES_SCHEMA: u64 = 1;

/// Default bound on the in-memory ring of closed windows.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// A sampled snapshot of ALG-DISCRETE primal/dual state, attached to the
/// window that ends where the sample was taken.
#[derive(Clone, Debug, PartialEq)]
pub struct DualPoint {
    /// Cumulative global dual offset `Y`.
    pub dual_offset: f64,
    /// Total evictions charged so far (`Σ_i m_i`).
    pub total_evictions: u64,
    /// Primal objective so far (`Σ_i f_i(m_i)`).
    pub primal_cost: f64,
}

/// Everything that happened inside one tumbling window
/// `[start, end)` of the request stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WindowDelta {
    /// Window ordinal (`start / width` for full windows).
    pub index: u64,
    /// First request index covered (inclusive).
    pub start: Time,
    /// One past the last request index covered (exclusive; a trailing
    /// partial window ends at the run length instead of a multiple of
    /// the width).
    pub end: Time,
    /// Requests served from cache in this window.
    pub hits: u64,
    /// Misses that filled free space (no eviction).
    pub inserts: u64,
    /// Misses that evicted a victim (excludes flush evictions).
    pub evictions: u64,
    /// Evictions charged by the end-of-run flush convention.
    pub flush_evictions: u64,
    /// Hits per requesting tenant, indexed by user id (trailing
    /// all-zero users omitted).
    pub hits_by_user: Vec<u64>,
    /// Misses per requesting tenant, same indexing.
    pub misses_by_user: Vec<u64>,
    /// Evictions per *victim's owner* (flush included), same indexing.
    pub evictions_by_user: Vec<u64>,
    /// Faulty records absorbed in this window (checked paths only).
    pub faults: FaultCounters,
    /// Exact latency delta for requests in this window; `None` when the
    /// recorder runs untimed (the deterministic default).
    pub latency_ns: Option<LogHistogram>,
    /// Dual-state sample taken at this window's close, when the run is
    /// driving ALG-DISCRETE and the loop attaches one.
    pub dual: Option<DualPoint>,
}

#[inline]
fn bump(v: &mut Vec<u64>, user: UserId) {
    let i = user.index();
    if i >= v.len() {
        v.resize(i + 1, 0);
    }
    v[i] += 1;
}

fn merge_vec(into: &mut Vec<u64>, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (a, &b) in into.iter_mut().zip(from) {
        *a += b;
    }
}

impl WindowDelta {
    fn fresh(index: u64, start: Time, end: Time) -> Self {
        WindowDelta {
            index,
            start,
            end,
            ..WindowDelta::default()
        }
    }

    /// Requests observed in this window.
    pub fn requests(&self) -> u64 {
        self.hits + self.inserts + self.evictions
    }

    /// Misses (fetches) in this window.
    pub fn misses(&self) -> u64 {
        self.inserts + self.evictions
    }

    /// `misses / requests` for this window alone (`0.0` when empty).
    pub fn miss_ratio(&self) -> f64 {
        let req = self.requests();
        if req == 0 {
            0.0
        } else {
            self.misses() as f64 / req as f64
        }
    }

    /// Whether nothing at all was observed in this window.
    pub fn is_empty(&self) -> bool {
        self.requests() == 0 && self.flush_evictions == 0 && self.faults.total_records() == 0
    }

    /// Fold another delta into this one: counters and per-user vectors
    /// add, fault counters add, latency histograms merge exactly, the
    /// span widens to cover both, and `other`'s dual sample (the later
    /// one, when merging in order) wins.
    pub fn merge_from(&mut self, other: &WindowDelta) {
        self.hits += other.hits;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.flush_evictions += other.flush_evictions;
        merge_vec(&mut self.hits_by_user, &other.hits_by_user);
        merge_vec(&mut self.misses_by_user, &other.misses_by_user);
        merge_vec(&mut self.evictions_by_user, &other.evictions_by_user);
        self.faults.merge(&other.faults);
        if let Some(h) = &other.latency_ns {
            self.latency_ns
                .get_or_insert_with(LogHistogram::new)
                .merge(h);
        }
        if let Some(d) = &other.dual {
            self.dual = Some(d.clone());
        }
        self.start = self.start.min(other.start);
        self.end = self.end.max(other.end);
    }

    /// The window as a JSON object (one series line). `miss_ratio` is
    /// emitted for plotters but derived on read.
    pub fn to_json_value(&self) -> Json {
        let ids = |v: &[u64]| Json::Arr(v.iter().map(|&n| Json::from_u64(n)).collect());
        let mut fields = vec![
            ("kind".into(), Json::Str("window".into())),
            ("index".into(), Json::from_u64(self.index)),
            ("start".into(), Json::from_u64(self.start)),
            ("end".into(), Json::from_u64(self.end)),
            ("hits".into(), Json::from_u64(self.hits)),
            ("inserts".into(), Json::from_u64(self.inserts)),
            ("evictions".into(), Json::from_u64(self.evictions)),
            (
                "flush_evictions".into(),
                Json::from_u64(self.flush_evictions),
            ),
            ("miss_ratio".into(), Json::Num(self.miss_ratio())),
            ("hits_by_user".into(), ids(&self.hits_by_user)),
            ("misses_by_user".into(), ids(&self.misses_by_user)),
            ("evictions_by_user".into(), ids(&self.evictions_by_user)),
            (
                "faults".into(),
                Json::Obj(vec![
                    (
                        "page_out_of_range".into(),
                        Json::from_u64(self.faults.page_out_of_range),
                    ),
                    (
                        "owner_mismatch".into(),
                        Json::from_u64(self.faults.owner_mismatch),
                    ),
                    (
                        "quarantined_drops".into(),
                        Json::from_u64(self.faults.quarantined_drops),
                    ),
                    (
                        "quarantined_users".into(),
                        Json::from_u64(self.faults.quarantined_users),
                    ),
                    ("total".into(), Json::from_u64(self.faults.total_records())),
                ]),
            ),
        ];
        if let Some(h) = &self.latency_ns {
            fields.push(("latency_ns".into(), h.to_json_value()));
        }
        if let Some(d) = &self.dual {
            fields.push((
                "dual".into(),
                Json::Obj(vec![
                    ("dual_offset".into(), Json::Num(d.dual_offset)),
                    ("total_evictions".into(), Json::from_u64(d.total_evictions)),
                    ("primal_cost".into(), Json::Num(d.primal_cost)),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// Reconstruct a window from its [`Self::to_json_value`] form.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        if v.get("kind").and_then(Json::as_str) != Some("window") {
            return Err("series line is not a window (missing kind: \"window\")".into());
        }
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("window missing '{key}'"))
        };
        let vec = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("window missing '{key}'"))?
                .iter()
                .map(|n| n.as_u64().ok_or_else(|| format!("bad entry in '{key}'")))
                .collect()
        };
        let faults = v.get("faults").ok_or("window missing 'faults'")?;
        let fcount = |key: &str| {
            faults
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("window faults missing '{key}'"))
        };
        let latency_ns = match v.get("latency_ns") {
            Some(h) => Some(LogHistogram::from_json_value(h)?),
            None => None,
        };
        let dual = match v.get("dual") {
            Some(d) => Some(DualPoint {
                dual_offset: d
                    .get("dual_offset")
                    .and_then(Json::as_f64)
                    .ok_or("dual missing 'dual_offset'")?,
                total_evictions: d
                    .get("total_evictions")
                    .and_then(Json::as_u64)
                    .ok_or("dual missing 'total_evictions'")?,
                primal_cost: d
                    .get("primal_cost")
                    .and_then(Json::as_f64)
                    .ok_or("dual missing 'primal_cost'")?,
            }),
            None => None,
        };
        Ok(WindowDelta {
            index: num("index")?,
            start: num("start")?,
            end: num("end")?,
            hits: num("hits")?,
            inserts: num("inserts")?,
            evictions: num("evictions")?,
            flush_evictions: num("flush_evictions")?,
            hits_by_user: vec("hits_by_user")?,
            misses_by_user: vec("misses_by_user")?,
            evictions_by_user: vec("evictions_by_user")?,
            faults: FaultCounters {
                page_out_of_range: fcount("page_out_of_range")?,
                owner_mismatch: fcount("owner_mismatch")?,
                quarantined_drops: fcount("quarantined_drops")?,
                quarantined_users: fcount("quarantined_users")?,
            },
            latency_ns,
            dual,
        })
    }
}

/// A [`Recorder`] that buckets every engine event into tumbling windows
/// of `width` requests.
///
/// `WITH_LATENCY` mirrors [`Recorder::TIMED`]: when `true` the engine
/// samples a monotonic clock per request and each window carries an
/// exact latency histogram delta — and the series stops being
/// deterministic, since wall-clock samples differ run to run. The
/// default `false` keeps windows a pure function of the request stream,
/// which is what makes checkpoint/resume series byte-identical.
///
/// Windows close themselves: every hook carries the engine time, and an
/// event at `t ≥ end` first closes the current window (plus empty gap
/// windows, if the stream skipped whole windows) and then lands in the
/// window containing `t`. Driving loops call
/// [`roll_to`](Self::roll_to) at boundaries they care about (to attach a
/// [`DualPoint`] via [`note_dual`](Self::note_dual) and drain freshly
/// closed windows) and [`finalize`](Self::finalize) once at the end to
/// close the trailing partial window.
#[derive(Clone, Debug)]
pub struct WindowedRecorder<const WITH_LATENCY: bool = false> {
    width: u64,
    cur: WindowDelta,
    ring: VecDeque<WindowDelta>,
    ring_capacity: usize,
    /// Windows evicted from the ring before being drained.
    dropped: u64,
    /// Lowest window index not yet returned by `drain_new`.
    next_drain: u64,
    finalized: bool,
}

impl<const WITH_LATENCY: bool> WindowedRecorder<WITH_LATENCY> {
    /// Tumbling windows of `width` requests (clamped to ≥ 1), starting
    /// at request 0, with the default ring bound.
    pub fn new(width: u64) -> Self {
        Self::starting_at(width, 0)
    }

    /// Resume-aware constructor: the first window is the one containing
    /// request `t`. `t` must sit on a window boundary (`t % width == 0`)
    /// — resuming mid-window would need the lost partial-window state
    /// and cannot reproduce the uninterrupted series.
    pub fn starting_at(width: u64, t: Time) -> Self {
        let width = width.max(1);
        assert!(
            t.is_multiple_of(width),
            "resume point {t} is not a multiple of the window width {width}"
        );
        let index = t / width;
        WindowedRecorder {
            width,
            cur: WindowDelta::fresh(index, t, t + width),
            ring: VecDeque::new(),
            ring_capacity: DEFAULT_RING_CAPACITY,
            dropped: 0,
            next_drain: index,
            finalized: false,
        }
    }

    /// Replace the bound on the in-memory ring of closed windows
    /// (clamped to ≥ 1). When the ring is full the oldest window is
    /// dropped; a streaming loop that drains every boundary never loses
    /// one.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity.max(1);
        self
    }

    /// The window width, in requests.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Windows evicted from the ring before they were drained.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Index of the window currently accumulating.
    pub fn current_index(&self) -> u64 {
        self.cur.index
    }

    fn close_current(&mut self) {
        let next_index = self.cur.index + 1;
        let next_start = self.cur.index * self.width + self.width;
        let done = std::mem::replace(
            &mut self.cur,
            WindowDelta::fresh(next_index, next_start, next_start + self.width),
        );
        if self.ring.len() == self.ring_capacity {
            if let Some(old) = self.ring.pop_front() {
                if old.index >= self.next_drain {
                    self.dropped += 1;
                }
            }
        }
        self.ring.push_back(done);
    }

    #[inline]
    fn window_for(&mut self, t: Time) -> &mut WindowDelta {
        while t >= self.cur.end {
            self.close_current();
        }
        &mut self.cur
    }

    /// Close every window that ends at or before `t` (emitting empty
    /// windows for gaps). Idempotent; called by the hooks automatically,
    /// and by driving loops at boundaries before draining.
    pub fn roll_to(&mut self, t: Time) {
        while t >= self.cur.end {
            self.close_current();
        }
    }

    /// Attach a dual-state sample to the window currently accumulating.
    /// At a boundary `t`, call this *before* [`roll_to`](Self::roll_to)
    /// so the sample lands on the window that is about to close.
    pub fn note_dual(&mut self, point: DualPoint) {
        self.cur.dual = Some(point);
    }

    /// Close the trailing window at run end `t` (its `end` becomes `t`,
    /// marking it partial unless `t` is a boundary). A trailing window
    /// that covers no requests is discarded, so a run of `L` requests
    /// yields exactly `⌈L / width⌉` windows.
    pub fn finalize(&mut self, t: Time) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        self.roll_to(t);
        if t > self.cur.start || !self.cur.is_empty() {
            self.cur.end = t.max(self.cur.start);
            self.close_current();
        }
    }

    /// Clone out every closed window not yet drained, oldest first.
    /// Streaming loops call this after each [`roll_to`](Self::roll_to)
    /// and hand the windows to a [`SeriesSink`].
    pub fn drain_new(&mut self) -> Vec<WindowDelta> {
        let from = self.next_drain;
        let out: Vec<WindowDelta> = self
            .ring
            .iter()
            .filter(|w| w.index >= from)
            .cloned()
            .collect();
        if let Some(last) = out.last() {
            self.next_drain = last.index + 1;
        }
        out
    }

    /// Tear down into the retained series (the ring contents; up to
    /// `ring_capacity` most recent windows, [`dropped`](Self::dropped)
    /// tells you how many streamed past it un-drained).
    pub fn into_series(self) -> WindowSeries {
        WindowSeries {
            width: self.width,
            dropped: self.dropped,
            windows: self.ring.into_iter().collect(),
        }
    }
}

impl<const WITH_LATENCY: bool> Recorder for WindowedRecorder<WITH_LATENCY> {
    const TIMED: bool = WITH_LATENCY;

    fn record_hit(&mut self, _ctx: &EngineCtx, t: Time, _page: PageId, user: UserId) {
        let w = self.window_for(t);
        w.hits += 1;
        bump(&mut w.hits_by_user, user);
    }

    fn record_insert(&mut self, _ctx: &EngineCtx, t: Time, _page: PageId, user: UserId) {
        let w = self.window_for(t);
        w.inserts += 1;
        bump(&mut w.misses_by_user, user);
    }

    fn record_eviction(
        &mut self,
        _ctx: &EngineCtx,
        t: Time,
        _page: PageId,
        user: UserId,
        _victim: PageId,
        victim_user: UserId,
    ) {
        let w = self.window_for(t);
        w.evictions += 1;
        bump(&mut w.misses_by_user, user);
        bump(&mut w.evictions_by_user, victim_user);
    }

    fn record_flush_eviction(&mut self, _page: PageId, user: UserId) {
        // The flush hook carries no time: it lands in the window that is
        // open when the run flushes, which `finalize` then closes.
        let w = &mut self.cur;
        w.flush_evictions += 1;
        bump(&mut w.evictions_by_user, user);
    }

    fn record_latency_ns(&mut self, t: Time, ns: u64) {
        let w = self.window_for(t);
        w.latency_ns
            .get_or_insert_with(LogHistogram::new)
            .record(ns);
    }

    fn record_fault(&mut self, fault: &RequestFault) {
        let w = self.window_for(fault.time);
        w.faults.count(fault.kind);
    }
}

/// An ordered sequence of window deltas with a shared width.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WindowSeries {
    /// The tumbling-window width the deltas were cut with.
    pub width: u64,
    /// Windows lost to ring overflow before they could be drained.
    pub dropped: u64,
    /// The windows, in index order.
    pub windows: Vec<WindowDelta>,
}

impl WindowSeries {
    /// Merge another series into this one by window index (shard-order
    /// fleet merge): windows with the same index fold together via
    /// [`WindowDelta::merge_from`], unmatched windows are inserted in
    /// order. Panics if the widths differ — deltas cut with different
    /// widths do not line up.
    pub fn merge(&mut self, other: &WindowSeries) {
        assert_eq!(
            self.width, other.width,
            "cannot merge series with different window widths"
        );
        self.dropped += other.dropped;
        for w in &other.windows {
            match self.windows.binary_search_by_key(&w.index, |x| x.index) {
                Ok(i) => self.windows[i].merge_from(w),
                Err(i) => self.windows.insert(i, w.clone()),
            }
        }
    }

    /// Fold every window into one whole-run delta.
    pub fn total(&self) -> WindowDelta {
        let mut total = WindowDelta::default();
        if let Some(first) = self.windows.first() {
            total.index = first.index;
            total.start = first.start;
            total.end = first.end;
        }
        for w in &self.windows {
            total.merge_from(w);
        }
        total
    }

    /// The series as a JSON array of window objects (used by the fleet
    /// report; the streaming form is a [`SeriesSink`] JSONL file).
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("width".into(), Json::from_u64(self.width)),
            ("dropped".into(), Json::from_u64(self.dropped)),
            (
                "windows".into(),
                Json::Arr(
                    self.windows
                        .iter()
                        .map(WindowDelta::to_json_value)
                        .collect(),
                ),
            ),
        ])
    }

    /// Reconstruct from the [`Self::to_json_value`] form.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let width = v
            .get("width")
            .and_then(Json::as_u64)
            .ok_or("series missing 'width'")?;
        let dropped = v.get("dropped").and_then(Json::as_u64).unwrap_or(0);
        let windows = v
            .get("windows")
            .and_then(Json::as_array)
            .ok_or("series missing 'windows'")?
            .iter()
            .map(WindowDelta::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WindowSeries {
            width,
            dropped,
            windows,
        })
    }
}

/// A parsed JSONL series file: the header metadata plus the windows.
#[derive(Clone, Debug)]
pub struct SeriesFile {
    /// The full header object (schema stamp, width, run metadata).
    pub header: Json,
    /// The window width from the header.
    pub width: u64,
    /// Every window line, in file order.
    pub windows: Vec<WindowDelta>,
}

impl SeriesFile {
    /// Parse a series written by [`SeriesSink`]. The first line must be
    /// the schema-stamped header; the stamp is checked before anything
    /// else, so files from a future version fail with a clear
    /// "unsupported schema" error. A `#crc32:` trailer (appended by
    /// finished soak/fleet runs) is verified and stripped when present;
    /// trailer-less files — including mid-run state files from a killed
    /// process — stay accepted.
    pub fn parse(text: &str) -> Result<SeriesFile, String> {
        let (text, _had_trailer) =
            crate::atomicio::verify_trailer(text).map_err(|e| format!("series file: {e}"))?;
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let head = lines.next().ok_or("series file is empty")?;
        let header = Json::parse(head).map_err(|e| format!("series header: {e}"))?;
        check_schema_stamp(&header, SERIES_SCHEMA, "series").map_err(|e| {
            if e.contains("unsupported") {
                format!("{e}; re-run `occ soak` with a matching build")
            } else {
                e
            }
        })?;
        if header.get("kind").and_then(Json::as_str) != Some("occ-series") {
            return Err("series header missing kind: \"occ-series\"".into());
        }
        let width = header
            .get("window")
            .and_then(Json::as_u64)
            .ok_or("series header missing 'window'")?;
        if width == 0 {
            return Err("series header 'window' must be positive".into());
        }
        let mut windows = Vec::new();
        for (i, line) in lines.enumerate() {
            let v = Json::parse(line).map_err(|e| format!("series line {}: {e}", i + 2))?;
            windows.push(
                WindowDelta::from_json_value(&v)
                    .map_err(|e| format!("series line {}: {e}", i + 2))?,
            );
        }
        Ok(SeriesFile {
            header,
            width,
            windows,
        })
    }

    /// The windows as a [`WindowSeries`].
    pub fn series(&self) -> WindowSeries {
        WindowSeries {
            width: self.width,
            dropped: 0,
            windows: self.windows.clone(),
        }
    }
}

/// Streams a window series as JSONL: one schema-stamped header line,
/// then one line per window, written as windows close — memory use is
/// one line's buffer no matter how many windows the run emits.
///
/// I/O errors are sticky, exactly like [`JsonlSink`](crate::JsonlSink):
/// after the first failure writes become no-ops and the error surfaces
/// once via [`error`](Self::error) / [`finish`](Self::finish), which the
/// CLI turns into exit code 3.
#[derive(Debug)]
pub struct SeriesSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write> SeriesSink<W> {
    /// Wrap a writer (hand a `File` in via `BufWriter`).
    pub fn new(out: W) -> Self {
        SeriesSink {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written so far (header included).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error hit, if any (writing stopped there).
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    fn emit(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        match self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    /// Write the header line: the schema stamp, the window width, and
    /// any run metadata (`scenario`, `policy`, …) the caller wants
    /// alongside.
    pub fn write_header(&mut self, width: u64, meta: &[(&str, Json)]) {
        let mut fields = vec![
            ("schema".into(), Json::from_u64(SERIES_SCHEMA)),
            ("kind".into(), Json::Str("occ-series".into())),
            ("window".into(), Json::from_u64(width)),
        ];
        for (k, v) in meta {
            fields.push(((*k).into(), v.clone()));
        }
        let line = Json::Obj(fields).to_json();
        self.emit(&line);
    }

    /// Write one window line.
    pub fn write_window(&mut self, w: &WindowDelta) {
        if self.error.is_some() {
            return;
        }
        let line = w.to_json_value().to_json();
        self.emit(&line);
    }

    /// Flush and tear down, returning the writer — or the sticky error
    /// if one occurred at any point.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_baselines::Lru;
    use occ_sim::prelude::*;

    fn zipfish_trace(len: u32) -> Trace {
        let u = Universe::uniform(3, 8);
        let pages: Vec<u32> = (0..len).map(|i| (i * 7 + i * i / 5) % 24).collect();
        Trace::from_page_indices(&u, &pages)
    }

    fn run_windowed(trace: &Trace, k: usize, width: u64) -> (WindowSeries, occ_sim::SimStats) {
        let mut eng = SteppingEngine::new(k, trace.universe().clone(), Lru::default())
            .with_recorder(WindowedRecorder::<false>::new(width));
        for (_, r) in trace.iter() {
            eng.step(r);
        }
        let t = eng.time();
        let stats = eng.stats().clone();
        let mut rec = eng.into_recorder();
        rec.finalize(t);
        (rec.into_series(), stats)
    }

    #[test]
    fn windows_tile_the_run_and_sum_to_totals() {
        let trace = zipfish_trace(1000);
        let (series, stats) = run_windowed(&trace, 6, 128);
        assert_eq!(series.windows.len(), 8); // ceil(1000 / 128)
        for (i, w) in series.windows.iter().enumerate() {
            assert_eq!(w.index, i as u64);
            assert_eq!(w.start, i as u64 * 128);
            let expect_end = ((i as u64 + 1) * 128).min(1000);
            assert_eq!(w.end, expect_end);
            assert_eq!(w.requests(), w.end - w.start);
        }
        let total = series.total();
        assert_eq!(total.hits, stats.total_hits());
        assert_eq!(total.misses(), stats.total_misses());
        assert_eq!(total.evictions, stats.total_evictions());
        for (u, us) in stats.per_user().iter().enumerate() {
            assert_eq!(total.hits_by_user.get(u).copied().unwrap_or(0), us.hits);
            assert_eq!(total.misses_by_user.get(u).copied().unwrap_or(0), us.misses);
            assert_eq!(
                total.evictions_by_user.get(u).copied().unwrap_or(0),
                us.evictions
            );
        }
    }

    #[test]
    fn width_wider_than_run_gives_one_partial_window() {
        let trace = zipfish_trace(50);
        let (series, stats) = run_windowed(&trace, 6, 1_000_000);
        assert_eq!(series.windows.len(), 1);
        let w = &series.windows[0];
        assert_eq!((w.start, w.end), (0, 50));
        assert_eq!(w.requests(), 50);
        assert_eq!(w.hits, stats.total_hits());
    }

    #[test]
    fn empty_run_yields_no_windows() {
        let mut rec = WindowedRecorder::<false>::new(64);
        rec.finalize(0);
        assert!(rec.into_series().windows.is_empty());
    }

    #[test]
    fn resume_at_boundary_reproduces_the_series() {
        let trace = zipfish_trace(700);
        let (whole, _) = run_windowed(&trace, 6, 100);

        // Same run split at request 300: fresh engine snapshots are not
        // needed here (the recorder is what's under test) — replay the
        // prefix into one recorder, the suffix into a second started at
        // the boundary, against one continuously-running engine.
        let mut eng = SteppingEngine::new(6, trace.universe().clone(), Lru::default())
            .with_recorder(WindowedRecorder::<false>::new(100));
        for (t, r) in trace.iter() {
            if t == 300 {
                let mut done = std::mem::replace(
                    eng.recorder_mut(),
                    WindowedRecorder::<false>::starting_at(100, 300),
                );
                done.finalize(300);
                let head = done.into_series();
                assert_eq!(head.windows.len(), 3);
                assert_eq!(head.windows.as_slice(), &whole.windows[..3]);
            }
            eng.step(r);
        }
        let t = eng.time();
        let mut tail = std::mem::replace(eng.recorder_mut(), WindowedRecorder::<false>::new(100));
        tail.finalize(t);
        let tail = tail.into_series();
        assert_eq!(tail.windows.as_slice(), &whole.windows[3..]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn resume_off_boundary_is_rejected() {
        let _ = WindowedRecorder::<false>::starting_at(100, 150);
    }

    #[test]
    fn ring_bound_drops_oldest_and_counts() {
        let trace = zipfish_trace(1000);
        let mut eng = SteppingEngine::new(6, trace.universe().clone(), Lru::default())
            .with_recorder(WindowedRecorder::<false>::new(10).with_ring_capacity(4));
        for (_, r) in trace.iter() {
            eng.step(r);
        }
        let t = eng.time();
        let mut rec = eng.into_recorder();
        rec.finalize(t);
        assert_eq!(rec.dropped(), 96);
        let series = rec.into_series();
        assert_eq!(series.windows.len(), 4);
        assert_eq!(series.windows[0].index, 96);
    }

    #[test]
    fn drain_new_returns_each_window_once() {
        let trace = zipfish_trace(95);
        let mut eng = SteppingEngine::new(6, trace.universe().clone(), Lru::default())
            .with_recorder(WindowedRecorder::<false>::new(20));
        let mut drained = Vec::new();
        for (t, r) in trace.iter() {
            if t > 0 && t % 20 == 0 {
                eng.recorder_mut().roll_to(t);
                drained.extend(eng.recorder_mut().drain_new());
            }
            eng.step(r);
        }
        let t = eng.time();
        eng.recorder_mut().finalize(t);
        drained.extend(eng.recorder_mut().drain_new());
        let series = eng.into_recorder().into_series();
        assert_eq!(drained, series.windows);
        assert_eq!(drained.len(), 5);
    }

    #[test]
    fn gaps_emit_empty_windows() {
        let mut rec = WindowedRecorder::<false>::new(10);
        let fault = RequestFault {
            time: 35,
            kind: occ_sim::error::FaultKind::PageOutOfRange,
            page: PageId(99),
            user: UserId(0),
        };
        rec.record_fault(&fault);
        rec.finalize(36);
        let series = rec.into_series();
        assert_eq!(series.windows.len(), 4);
        assert!(series.windows[0].is_empty());
        assert!(series.windows[1].is_empty());
        assert!(series.windows[2].is_empty());
        assert_eq!(series.windows[3].faults.page_out_of_range, 1);
        assert_eq!(series.total().faults.total_records(), 1);
    }

    #[test]
    fn window_json_round_trips() {
        let trace = zipfish_trace(300);
        let (series, _) = run_windowed(&trace, 6, 64);
        for w in &series.windows {
            let back = WindowDelta::from_json_value(&w.to_json_value()).unwrap();
            assert_eq!(&back, w);
        }
        let v = series.to_json_value();
        assert_eq!(WindowSeries::from_json_value(&v).unwrap(), series);
    }

    #[test]
    fn dual_point_attaches_to_the_closing_window() {
        let mut rec = WindowedRecorder::<false>::new(10);
        let ctx_trace = zipfish_trace(25);
        let mut eng =
            SteppingEngine::new(4, ctx_trace.universe().clone(), Lru::default()).with_recorder(rec);
        for (t, r) in ctx_trace.iter() {
            if t > 0 && t % 10 == 0 {
                eng.recorder_mut().note_dual(DualPoint {
                    dual_offset: t as f64,
                    total_evictions: t,
                    primal_cost: 0.0,
                });
                eng.recorder_mut().roll_to(t);
            }
            eng.step(r);
        }
        let t = eng.time();
        rec = eng.into_recorder();
        rec.note_dual(DualPoint {
            dual_offset: 25.0,
            total_evictions: 25,
            primal_cost: 0.0,
        });
        rec.finalize(t);
        let series = rec.into_series();
        assert_eq!(series.windows.len(), 3);
        assert_eq!(series.windows[0].dual.as_ref().unwrap().dual_offset, 10.0);
        assert_eq!(series.windows[1].dual.as_ref().unwrap().dual_offset, 20.0);
        assert_eq!(series.windows[2].dual.as_ref().unwrap().dual_offset, 25.0);
    }

    #[test]
    fn series_sink_writes_header_then_windows_and_parses_back() {
        let trace = zipfish_trace(256);
        let (series, _) = run_windowed(&trace, 6, 100);
        let mut sink = SeriesSink::new(Vec::new());
        sink.write_header(100, &[("scenario", Json::Str("test".into()))]);
        for w in &series.windows {
            sink.write_window(w);
        }
        assert_eq!(sink.lines(), 1 + 3);
        let buf = sink.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let file = SeriesFile::parse(&text).unwrap();
        assert_eq!(file.width, 100);
        assert_eq!(
            file.header.get("scenario").and_then(Json::as_str),
            Some("test")
        );
        assert_eq!(file.windows, series.windows);
    }

    #[test]
    fn series_sink_errors_are_sticky() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = SeriesSink::new(FailAfter(3));
        sink.write_header(10, &[]);
        for i in 0..5 {
            sink.write_window(&WindowDelta::fresh(i, i * 10, (i + 1) * 10));
        }
        assert!(sink.lines() < 6);
        assert!(sink.error().is_some());
        assert!(sink.finish().is_err());
    }

    #[test]
    fn unknown_series_schema_is_rejected_before_anything_else() {
        let future = format!(
            "{{\"schema\":{},\"kind\":\"occ-series\"}}\nnot even json\n",
            SERIES_SCHEMA + 3
        );
        let err = SeriesFile::parse(&future).unwrap_err();
        assert!(
            err.contains(&format!("schema {} unsupported", SERIES_SCHEMA + 3)),
            "got: {err}"
        );
        let err = SeriesFile::parse("{\"kind\":\"occ-series\"}\n").unwrap_err();
        assert!(err.contains("schema"), "got: {err}");
        assert!(SeriesFile::parse("").is_err());
    }

    #[test]
    fn fleet_style_merge_by_index_equals_pooled_run() {
        // Two shards over different traces; merging their series by
        // index must equal running both event streams into one recorder.
        let t1 = zipfish_trace(330);
        let u2 = Universe::uniform(3, 8);
        let pages: Vec<u32> = (0..250u32).map(|i| (i * 11 + 3) % 24).collect();
        let t2 = Trace::from_page_indices(&u2, &pages);

        let (s1, _) = run_windowed(&t1, 6, 100);
        let (s2, _) = run_windowed(&t2, 6, 100);
        let mut merged = s1.clone();
        merged.merge(&s2);

        assert_eq!(merged.windows.len(), 4); // shard 1 has 4 windows, shard 2 has 3
        for w in &merged.windows {
            let a = s1.windows.iter().find(|x| x.index == w.index);
            let b = s2.windows.iter().find(|x| x.index == w.index);
            let hits = a.map_or(0, |x| x.hits) + b.map_or(0, |x| x.hits);
            assert_eq!(w.hits, hits);
        }
        let total = merged.total();
        assert_eq!(total.requests(), 330 + 250);
    }

    #[test]
    fn timed_recorder_collects_latency_deltas() {
        let trace = zipfish_trace(120);
        let mut eng = SteppingEngine::new(6, trace.universe().clone(), Lru::default())
            .with_recorder(WindowedRecorder::<true>::new(50));
        for (_, r) in trace.iter() {
            eng.step(r);
        }
        let t = eng.time();
        let mut rec = eng.into_recorder();
        rec.finalize(t);
        let series = rec.into_series();
        assert_eq!(series.windows.len(), 3);
        let mut merged = LogHistogram::new();
        for w in &series.windows {
            let h = w.latency_ns.as_ref().expect("timed windows carry deltas");
            assert_eq!(h.count(), w.requests());
            merged.merge(h);
        }
        assert_eq!(merged.count(), 120);
    }
}
