//! Dual-variable telemetry for the paper's ALG-DISCRETE.
//!
//! [`ConvexCaching`] maintains a global dual offset `Y` (the paper's
//! rising water level) and per-user eviction counts `m(i, t)`; the
//! primal cost it pays is `Σ_i f_i(m_i)`. [`DualTrace`] snapshots all
//! three at a sampling cadence, producing the trajectory `occ observe`
//! emits: how the dual offset climbs, how evictions spread across
//! users, and how the primal objective accumulates.
//!
//! The trace is driven from *outside* the engine (the policy is
//! mutably borrowed while engine hooks run, so a [`Recorder`] cannot
//! also read it): the observing loop calls
//! [`maybe_sample`](DualTrace::maybe_sample) between steps with
//! `engine.policy()`, then [`finalize`](DualTrace::finalize) once the
//! trace is exhausted. The final sample's `primal_cost` is exact — it
//! is `Σ_i f_i(m_i)` over the algorithm's own eviction counts, which
//! move in lockstep with the engine's per-user eviction counters, so it
//! equals `CostProfile::total_cost(&stats.eviction_vector())` bitwise.
//!
//! [`Recorder`]: occ_sim::probe::Recorder

use crate::json::Json;
use occ_core::ConvexCaching;
use occ_sim::ids::Time;

/// One snapshot of the algorithm's primal/dual state.
#[derive(Clone, Debug, PartialEq)]
pub struct DualSample {
    /// Simulation time of the snapshot (requests served so far).
    pub t: Time,
    /// Cumulative global dual offset `Y` (monotone across
    /// renormalizations).
    pub dual_offset: f64,
    /// Total evictions charged so far (`Σ_i m_i`).
    pub total_evictions: u64,
    /// Primal objective so far (`Σ_i f_i(m_i)`).
    pub primal_cost: f64,
}

/// Samples [`ConvexCaching`] state every `every` requests.
#[derive(Clone, Debug)]
pub struct DualTrace {
    every: u64,
    samples: Vec<DualSample>,
    final_m: Vec<u64>,
}

impl DualTrace {
    /// Sample every `every` requests (clamped to ≥ 1).
    pub fn new(every: u64) -> Self {
        DualTrace {
            every: every.max(1),
            samples: Vec::new(),
            final_m: Vec::new(),
        }
    }

    /// The sampling cadence.
    pub fn every(&self) -> u64 {
        self.every
    }

    fn snapshot(t: Time, alg: &ConvexCaching) -> DualSample {
        DualSample {
            t,
            dual_offset: alg.cumulative_dual_offset(),
            total_evictions: alg.eviction_counts().iter().sum(),
            primal_cost: alg.primal_cost(),
        }
    }

    /// Record a sample if `t` falls on the cadence (call once per step).
    pub fn maybe_sample(&mut self, t: Time, alg: &ConvexCaching) {
        if t.is_multiple_of(self.every) {
            self.samples.push(Self::snapshot(t, alg));
        }
    }

    /// Record the end-of-run sample unconditionally and capture the
    /// final per-user eviction counts `m(i, T)`.
    pub fn finalize(&mut self, t: Time, alg: &ConvexCaching) {
        if self.samples.last().map(|s| s.t) != Some(t) {
            self.samples.push(Self::snapshot(t, alg));
        }
        self.final_m = alg.eviction_counts();
    }

    /// The recorded trajectory, in time order.
    pub fn samples(&self) -> &[DualSample] {
        &self.samples
    }

    /// Final per-user eviction counts (empty before
    /// [`finalize`](Self::finalize)).
    pub fn final_m(&self) -> &[u64] {
        &self.final_m
    }

    /// The last sample's exact primal cost `Σ_i f_i(m_i)`, if any
    /// sample was taken.
    pub fn final_primal_cost(&self) -> Option<f64> {
        self.samples.last().map(|s| s.primal_cost)
    }

    /// The trajectory as a JSON object:
    /// `{"every":…,"final_m":[…],"samples":[{"t":…,"dual_offset":…,…},…]}`.
    pub fn to_json_value(&self) -> Json {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("t".into(), Json::from_u64(s.t)),
                    ("dual_offset".into(), Json::Num(s.dual_offset)),
                    ("total_evictions".into(), Json::from_u64(s.total_evictions)),
                    ("primal_cost".into(), Json::Num(s.primal_cost)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("every".into(), Json::from_u64(self.every)),
            (
                "final_m".into(),
                Json::Arr(self.final_m.iter().map(|&m| Json::from_u64(m)).collect()),
            ),
            ("samples".into(), Json::Arr(samples)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::prelude::*;
    use occ_workloads::presets::two_tier;

    #[test]
    fn trajectory_is_monotone_and_final_cost_exact() {
        let scenario = two_tier();
        let trace = scenario.trace(4_000, 7);
        let universe = trace.universe().clone();
        let costs = scenario.costs.clone();
        let alg = ConvexCaching::new(costs.clone());
        let mut eng = SteppingEngine::new(scenario.suggested_k, universe, alg);
        let mut dt = DualTrace::new(100);
        for (_, r) in trace.iter() {
            dt.maybe_sample(eng.time(), eng.policy());
            eng.step(r);
        }
        dt.finalize(eng.time(), eng.policy());

        let samples = dt.samples();
        assert!(samples.len() > 2);
        for w in samples.windows(2) {
            assert!(w[1].dual_offset >= w[0].dual_offset, "dual offset fell");
            assert!(w[1].primal_cost >= w[0].primal_cost, "primal cost fell");
            assert!(w[1].total_evictions >= w[0].total_evictions);
        }
        // Exactness: the algorithm's m vector is the engine's per-user
        // eviction counters, so Σ f_i(m_i) matches the stats-derived
        // cost bitwise.
        assert_eq!(dt.final_m(), eng.stats().eviction_vector().as_slice());
        let expected = costs.total_cost(&eng.stats().eviction_vector());
        assert_eq!(dt.final_primal_cost().unwrap(), expected);
    }

    #[test]
    fn json_shape() {
        let dt = DualTrace::new(10);
        let v = dt.to_json_value();
        assert!(v.get("every").is_some());
        assert!(v.get("samples").and_then(Json::as_array).is_some());
        assert!(v.get("final_m").and_then(Json::as_array).is_some());
    }
}
