//! A log-linear histogram for latency and value distributions.
//!
//! The classic HdrHistogram bucketing: values below `2^SUB_BITS` get an
//! exact unit bucket each; above that, every octave `[2^e, 2^{e+1})` is
//! split into `2^SUB_BITS` linear sub-buckets, so the quantile error is
//! bounded by one part in `2^SUB_BITS` (≈ 3.1% with the 5 bits used
//! here) at every magnitude. Recording is two shifts and an increment —
//! cheap enough to sit inside a [`Recorder`](occ_sim::probe::Recorder)
//! hook — and the bucket array is a fixed ~15 KiB regardless of how many
//! samples are recorded, so histograms from sharded runs can be
//! [`merge`](LogHistogram::merge)d exactly (bucket-wise addition; merge
//! of shards ≡ histogram of the whole, a property test in this crate).
//!
//! Snapshots round-trip through JSON ([`to_json`](LogHistogram::to_json)
//! / [`from_json`](LogHistogram::from_json)) with a sparse encoding, so
//! empty benches don't pay for 1 900 zero buckets.

use crate::json::Json;

/// Linear sub-buckets per octave, as a bit count: 32 sub-buckets, ≤3.1%
/// relative quantile error.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Octaves above the exact range (`u64` has 64 − SUB_BITS of them), plus
/// the exact range itself.
const NUM_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB_COUNT as usize;

/// Index of the bucket containing `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // ≥ SUB_BITS
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) - SUB_COUNT; // ∈ [0, SUB_COUNT)
        ((shift as usize + 1) << SUB_BITS) + sub as usize
    }
}

/// Largest value mapping to bucket `index` (inclusive upper edge).
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_COUNT as usize {
        index as u64
    } else {
        let shift = (index >> SUB_BITS) as u32 - 1;
        let sub = (index as u64 & (SUB_COUNT - 1)) + SUB_COUNT;
        let lower = sub << shift;
        lower + ((1u64 << shift) - 1)
    }
}

/// A mergeable log-linear histogram over `u64` values (typically
/// nanoseconds).
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v`.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) as the inclusive upper edge of
    /// the bucket holding the rank-`⌈q·count⌉` value, clamped to the
    /// exact observed [`max`](Self::max). Values in the exact range
    /// (< 32) are exact; larger ones are within 3.1% of the true sample
    /// quantile. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Add every sample of `other` into `self` (exact: bucket-wise).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serialize to a compact JSON object with sparse bucket encoding:
    /// `{"count":…,"sum":…,"min":…,"max":…,"buckets":[[index,count],…]}`.
    pub fn to_json_value(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::from_u64(i as u64), Json::from_u64(c)]))
            .collect();
        // `min`/`max`/`sum` range over the full u64/u128 domain, beyond
        // f64's exact-integer range, so they are encoded as decimal
        // strings; `count` and bucket counts are sample counts, which
        // stay comfortably below 2^53. `mean` is derived (sum / count)
        // and emitted so windows are plottable without quantile
        // reconstruction; the read side ignores it.
        Json::Obj(vec![
            ("count".into(), Json::from_u64(self.count)),
            ("sum".into(), Json::Str(self.sum.to_string())),
            ("min".into(), Json::Str(self.min().to_string())),
            ("max".into(), Json::Str(self.max.to_string())),
            ("mean".into(), Json::Num(self.mean())),
            ("buckets".into(), Json::Arr(buckets)),
        ])
    }

    /// Serialize to a JSON string (see [`Self::to_json_value`]).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Reconstruct from the [`Self::to_json_value`] encoding.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let mut h = LogHistogram::new();
        let buckets = v
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or("histogram missing 'buckets' array")?;
        for entry in buckets {
            let pair = entry.as_array().ok_or("bucket entry must be [idx, n]")?;
            let (idx, n) = match pair {
                [i, n] => (
                    i.as_u64().ok_or("bucket index must be u64")? as usize,
                    n.as_u64().ok_or("bucket count must be u64")?,
                ),
                _ => return Err("bucket entry must have two elements".into()),
            };
            if idx >= NUM_BUCKETS {
                return Err(format!("bucket index {idx} out of range"));
            }
            h.counts[idx] += n;
            h.count += n;
        }
        // Accept the wide fields as decimal strings (the exact form this
        // type writes) or as plain numbers (hand-written fixtures).
        let wide = |name: &str| -> Result<u128, String> {
            match v.get(name) {
                Some(Json::Str(s)) => s
                    .parse()
                    .map_err(|_| format!("'{name}' is not a decimal integer")),
                Some(n) => n
                    .as_u64()
                    .map(u128::from)
                    .ok_or_else(|| format!("'{name}' must be an unsigned integer")),
                None => Err(format!("histogram missing '{name}'")),
            }
        };
        let narrow = |name: &str| -> Result<u64, String> {
            u64::try_from(wide(name)?).map_err(|_| format!("'{name}' exceeds u64"))
        };
        if h.count
            != v.get("count")
                .and_then(Json::as_u64)
                .ok_or("histogram missing 'count'")?
        {
            return Err("bucket counts disagree with 'count'".into());
        }
        h.sum = wide("sum")?;
        h.max = narrow("max")?;
        h.min = if h.count == 0 {
            u64::MAX
        } else {
            narrow("min")?
        };
        Ok(h)
    }

    /// Parse from a JSON string (see [`Self::from_json_value`]).
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_json_value(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_consistent() {
        // Every value maps to a bucket whose upper edge is >= the value
        // and within the 1/32 relative error bound.
        for v in (0u64..1000).chain([1 << 20, (1 << 40) + 12345, u64::MAX]) {
            let b = bucket_of(v);
            let upper = bucket_upper(b);
            assert!(upper >= v, "upper({b}) = {upper} < {v}");
            assert!(
                upper - v <= (v >> SUB_BITS),
                "bucket error too large for {v}: upper {upper}"
            );
            if b > 0 {
                assert!(
                    bucket_upper(b - 1) < v,
                    "value {v} fits the previous bucket"
                );
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 30, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.p50(), 2);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.sum(), 67);
    }

    #[test]
    fn quantiles_clamp_to_observed_max() {
        let mut h = LogHistogram::new();
        h.record(1_000_003); // single sample: every quantile is that value's bucket
        assert_eq!(h.p50(), 1_000_003);
        assert_eq!(h.p999(), 1_000_003);
    }

    #[test]
    fn merge_equals_whole() {
        let values: Vec<u64> = (0..500u64).map(|i| i * i * 37 % 100_000).collect();
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn json_round_trip() {
        let mut h = LogHistogram::new();
        for v in [0u64, 5, 31, 32, 1000, 123_456_789] {
            h.record_n(v, 3);
        }
        let text = h.to_json();
        let back = LogHistogram::from_json(&text).unwrap();
        assert_eq!(back, h);
        // The four plottable summary fields ride along in the JSON.
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(h.count()));
        assert_eq!(v.get("min").and_then(Json::as_str), Some("0"));
        assert_eq!(
            v.get("max").and_then(Json::as_str),
            Some(h.max().to_string().as_str())
        );
        assert_eq!(v.get("mean").and_then(Json::as_f64), Some(h.mean()));
        // Empty histogram round-trips too.
        let empty = LogHistogram::new();
        assert_eq!(LogHistogram::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn from_json_rejects_inconsistency() {
        assert!(LogHistogram::from_json("{}").is_err());
        assert!(LogHistogram::from_json(
            r#"{"count": 5, "sum": 0, "min": 0, "max": 0, "buckets": []}"#
        )
        .is_err());
        assert!(LogHistogram::from_json(
            r#"{"count": 1, "sum": 0, "min": 0, "max": 0, "buckets": [[99999, 1]]}"#
        )
        .is_err());
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
