//! A minimal JSON reader/writer.
//!
//! The workspace builds offline against a no-op `serde` stub (see
//! `vendor/serde`), so anything that must *round-trip* — histogram
//! snapshots, metrics reports, the `occ report` subcommand — needs a
//! real serializer. This module implements the subset of JSON the probe
//! layer emits and consumes: objects, arrays, strings with escapes,
//! numbers (parsed as `f64`, written losslessly for `u64` counters via
//! [`Json::from_u64`]), booleans and null. It is not a general-purpose
//! JSON library and deliberately rejects inputs deeper than
//! [`MAX_DEPTH`].

use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser (stack-overflow guard).
pub const MAX_DEPTH: usize = 64;

/// Validate the `schema` stamp of a schema-stamped document (`what`
/// names the document kind in error messages, e.g. "report").
///
/// Shared by every stamped format (observe reports, conformance verdict
/// tables): the stamp is checked *before* any other key, so a document
/// from a future version fails with "unsupported schema" rather than a
/// misleading missing-key complaint about keys that version legitimately
/// renamed or dropped.
pub fn check_schema_stamp(v: &Json, expected: u64, what: &str) -> Result<u64, String> {
    let schema = v
        .get("schema")
        .ok_or_else(|| format!("{what} has no 'schema' stamp"))?
        .as_u64()
        .ok_or("'schema' must be an unsigned integer")?;
    if schema != expected {
        return Err(format!(
            "{what} schema {schema} unsupported (this build reads schema {expected})"
        ));
    }
    Ok(schema)
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Stored as `f64`; u64 counters ≤ 2^53 survive exactly.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// [`get`](Json::get) lookups performed front-to-back — we keep the
    /// first match, matching the emit side which never duplicates).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from a `u64` counter. Counters in this workspace are
    /// event counts well below 2^53, so the `f64` representation is
    /// exact; values above that would round and are rejected loudly.
    pub fn from_u64(v: u64) -> Json {
        assert!(
            v <= (1u64 << 53),
            "counter {v} exceeds exact f64 range; widen the JSON layer first"
        );
        Json::Num(v as f64)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= (1u64 << 53) as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Write a float: integers without a fractional part (so counters
/// round-trip as `123`, not `123.0`), everything else via Rust's
/// shortest-roundtrip `Display`. Non-finite values have no JSON form and
/// are emitted as `null`.
fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_literal("true") {
                    Ok(Json::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basic_values() {
        let text = r#"{"a": 1, "b": [true, false, null], "c": "x\"y\n", "d": -2.5e3}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-2500.0));
        // Emit and reparse: identical value.
        let again = Json::parse(&v.to_json()).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn integers_written_without_fraction() {
        assert_eq!(Json::from_u64(123).to_json(), "123");
        assert_eq!(Json::Num(0.5).to_json(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#"[{"k": [1, 2, {"x": []}]}]"#).unwrap();
        let obj = &v.as_array().unwrap()[0];
        let arr = obj.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert!(arr[2].get("x").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn unicode_and_control_escapes() {
        let original = Json::Str("héllo \u{1} wörld".into());
        let parsed = Json::parse(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn u64_lookup_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }
}
