//! Torn-write-safe persistence: atomic-rename writes plus a CRC-32
//! text trailer for every artifact the CLI may later resume from.
//!
//! Two failure modes are covered:
//!
//! * **Torn writes** — a crash mid-`write(2)` leaves a partial file.
//!   [`write_atomic`] writes to a same-directory temp file, `fsync`s
//!   it, atomically renames it over the destination, and `fsync`s the
//!   directory, so readers only ever observe the old file or the
//!   complete new one.
//! * **Silent corruption / external truncation** — a complete-looking
//!   file with flipped or missing bytes. Text artifacts carry a final
//!   `#crc32:xxxxxxxx` line over everything before it;
//!   [`verify_trailer`] / [`require_trailer`] recompute and compare,
//!   so `occ resume --from` fails loudly (exit 4) instead of silently
//!   resuming from a damaged snapshot.
//!
//! The trailer line starts with `#` — not valid JSON — so pre-trailer
//! parsers that split on lines must skip it explicitly; the readers in
//! this workspace all strip it via [`verify_trailer`] first.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

pub use occ_sim::checksum::{crc32, Crc32};

/// Prefix of the checksum trailer line appended to text artifacts.
pub const CRC_TRAILER_PREFIX: &str = "#crc32:";

/// Append the `#crc32:xxxxxxxx` trailer line to `body`. The checksum
/// covers every byte of `body` exactly as passed (including its final
/// newline, which callers should ensure is present so the trailer
/// starts a fresh line).
pub fn with_trailer(body: &str) -> String {
    let mut out = String::with_capacity(body.len() + CRC_TRAILER_PREFIX.len() + 9);
    out.push_str(body);
    if !body.is_empty() && !body.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(&trailer_line(crc32(body.as_bytes())));
    out
}

/// The trailer line (with terminating newline) for a given checksum.
pub fn trailer_line(crc: u32) -> String {
    format!("{CRC_TRAILER_PREFIX}{crc:08x}\n")
}

/// Split `text` into (body, trailer-present) and verify the checksum
/// when a trailer is present. Files without a trailer pass through
/// untouched (old artifacts stay readable); files **with** a trailer
/// must match, and a malformed trailer line is itself an error.
pub fn verify_trailer(text: &str) -> Result<(&str, bool), String> {
    // The trailer, when present, is the final line of the file.
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let last_start = trimmed.rfind('\n').map_or(0, |i| i + 1);
    let last = &trimmed[last_start..];
    let Some(hex) = last.strip_prefix(CRC_TRAILER_PREFIX) else {
        return Ok((text, false));
    };
    let body = &text[..last_start];
    if hex.len() != 8 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!(
            "malformed checksum trailer {last:?} (want {CRC_TRAILER_PREFIX} + 8 hex digits)"
        ));
    }
    let want = u32::from_str_radix(hex, 16).expect("8 hex digits parse as u32");
    let got = crc32(body.as_bytes());
    if got != want {
        return Err(format!(
            "checksum mismatch: trailer says crc32 {want:08x}, file content hashes to {got:08x} \
             (torn write or corruption)"
        ));
    }
    Ok((body, true))
}

/// Like [`verify_trailer`], but the trailer is mandatory. Used for
/// checkpoints, where a missing trailer means the file was truncated
/// (or produced by something other than this tool) and resuming from
/// it silently would be unsafe.
pub fn require_trailer(text: &str) -> Result<&str, String> {
    match verify_trailer(text)? {
        (body, true) => Ok(body),
        (_, false) => Err(format!(
            "missing checksum trailer (expected a final {CRC_TRAILER_PREFIX}... line); \
             file is truncated or was not written by this tool"
        )),
    }
}

/// Write `bytes` to `path` atomically: same-directory temp file →
/// `fsync` → rename over `path` → `fsync` the directory. A crash at
/// any point leaves either the old file or the complete new one,
/// never a prefix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    sync_parent_dir(path);
    Ok(())
}

/// [`write_atomic`] with the CRC trailer appended: the standard write
/// path for checkpoints and finished series files.
pub fn write_atomic_with_trailer(path: &Path, body: &str) -> io::Result<()> {
    write_atomic(path, with_trailer(body).as_bytes())
}

/// The temp-file name used by [`write_atomic`]: `<path>.tmp`, in the
/// same directory so the rename cannot cross filesystems.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Best-effort `fsync` of `path`'s parent directory so the rename
/// itself is durable. Failures are ignored: not all platforms allow
/// opening a directory for sync, and the rename is already atomic.
fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// A [`Write`] adapter that folds every written byte into a running
/// CRC-32. Streaming sinks (per-shard series files, `occ soak`
/// series) write through this so the trailer can be appended at the
/// end without re-reading the file.
#[derive(Debug)]
pub struct CrcWriter<W> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> CrcWriter<W> {
    /// Wrap `inner` with a fresh checksum state.
    pub fn new(inner: W) -> Self {
        CrcWriter {
            inner,
            crc: Crc32::new(),
        }
    }

    /// CRC-32 of everything successfully written so far.
    pub fn crc(&self) -> u32 {
        self.crc.value()
    }

    /// Unwrap, returning the inner writer and the final checksum.
    pub fn into_parts(self) -> (W, u32) {
        let crc = self.crc.value();
        (self.inner, crc)
    }

    /// Shared access to the wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Exclusive access to the wrapped writer, **bypassing** the
    /// checksum — for appending the trailer line itself, which must
    /// not fold into the CRC it carries.
    pub fn inner_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("occ-atomicio-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn trailer_round_trips() {
        let body = "{\"a\":1}\n{\"b\":2}\n";
        let full = with_trailer(body);
        assert!(full.ends_with('\n'));
        let (stripped, present) = verify_trailer(&full).unwrap();
        assert!(present);
        assert_eq!(stripped, body);
        assert_eq!(require_trailer(&full).unwrap(), body);
    }

    #[test]
    fn missing_trailer_is_accepted_only_when_optional() {
        let body = "{\"a\":1}\n";
        let (stripped, present) = verify_trailer(body).unwrap();
        assert!(!present);
        assert_eq!(stripped, body);
        let err = require_trailer(body).unwrap_err();
        assert!(err.contains("missing checksum trailer"), "{err}");
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let full = with_trailer("important checkpoint state\nsecond line\n");
        let bytes = full.as_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x01;
            // Some flips break UTF-8; those count as detected too.
            let Ok(text) = std::str::from_utf8(&bad).map(str::to_owned) else {
                continue;
            };
            let err = require_trailer(&text).unwrap_err();
            assert!(
                err.contains("checksum mismatch")
                    || err.contains("malformed checksum trailer")
                    || err.contains("missing checksum trailer"),
                "flip at {i} produced: {err}"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let full = with_trailer("line one\nline two\nline three\n");
        // Every cut except the trailer's own final newline (body and
        // checksum both complete and consistent there) must fail.
        for cut in 1..full.len() - 1 {
            let text = &full[..cut];
            assert!(
                require_trailer(text).is_err(),
                "truncation at {cut} passed verification"
            );
        }
    }

    #[test]
    fn malformed_trailer_is_an_error_not_a_passthrough() {
        for bad in [
            "#crc32:xyz\n",
            "#crc32:1234567\n",
            "#crc32:123456789\n",
            "#crc32:GGGGGGGG\n",
        ] {
            let text = format!("body\n{bad}");
            let err = verify_trailer(&text).unwrap_err();
            assert!(err.contains("malformed"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn write_atomic_round_trips_and_cleans_up() {
        let dir = tdir("roundtrip");
        let path = dir.join("artifact.json");
        write_atomic_with_trailer(&path, "{\"x\":1}\n").unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(require_trailer(&text).unwrap(), "{\"x\":1}\n");
        assert!(!tmp_path(&path).exists(), "temp file must not linger");
        // Overwrite: readers only ever see old-complete or new-complete.
        write_atomic_with_trailer(&path, "{\"x\":2}\n").unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(require_trailer(&text).unwrap(), "{\"x\":2}\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_writer_matches_one_shot() {
        let mut w = CrcWriter::new(Vec::new());
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world\n").unwrap();
        let (buf, crc) = w.into_parts();
        assert_eq!(buf, b"hello world\n");
        assert_eq!(crc, crc32(b"hello world\n"));
    }

    #[test]
    fn empty_body_trailer_verifies() {
        let full = with_trailer("");
        let (body, present) = verify_trailer(&full).unwrap();
        assert!(present);
        assert_eq!(body, "");
    }
}
