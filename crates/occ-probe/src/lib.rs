//! Observability for the caching simulator: histograms, recorders,
//! streaming sinks, dual-variable telemetry, and the `occ observe`
//! report format.
//!
//! The [`Recorder`] contract itself lives in `occ-sim` (so the engine
//! does not depend on this crate); everything here is a consumer of it:
//!
//! * [`LogHistogram`] — mergeable log-linear histogram with bounded
//!   relative error, used for latency and value distributions;
//! * [`MetricsRecorder`] — counters + latency histogram for a run;
//! * [`JsonlSink`] — streams one JSON line per engine event, bounded
//!   memory for arbitrarily long traces;
//! * [`DualTrace`] / [`DualSample`] — the paper algorithm's dual offset
//!   `Y`, eviction counts `m(i,t)`, and primal objective `Σ f_i(m_i)`
//!   over time;
//! * [`timeseries`] — tumbling-window deltas ([`WindowedRecorder`],
//!   [`SeriesSink`]) behind `occ soak`'s streaming JSONL series;
//! * [`ObserveReport`] — the JSON/table report `occ observe` emits and
//!   `occ report` renders;
//! * [`atomicio`] — torn-write-safe persistence: atomic-rename writes
//!   and CRC-32 trailers on checkpoints, series files, and reports;
//! * [`checkpoint`] — the lossless on-disk JSON form of
//!   `occ_sim::EngineSnapshot` behind `occ observe --checkpoint` and
//!   `occ resume`;
//! * [`Json`] — the minimal parser/writer backing all of the above
//!   (the workspace's vendored `serde` is a no-op stub, so
//!   serialization is done by hand).
//!
//! Overhead discipline: recorders only pay when attached. The engines
//! default to [`NoopRecorder`], which compiles to the unrecorded code —
//! see `occ_sim::probe` for the mechanism and `bench_baseline` for the
//! guard.

#![warn(missing_docs)]

pub mod atomicio;
pub mod checkpoint;
pub mod dual;
pub mod histogram;
pub mod json;
pub mod recorder;
pub mod report;
pub mod sink;
pub mod timeseries;

pub use atomicio::{
    crc32, require_trailer, verify_trailer, with_trailer, write_atomic, write_atomic_with_trailer,
    CrcWriter, CRC_TRAILER_PREFIX,
};
pub use checkpoint::{snapshot_from_json, snapshot_to_json};
pub use dual::{DualSample, DualTrace};
pub use histogram::LogHistogram;
pub use json::{check_schema_stamp, Json};
pub use recorder::MetricsRecorder;
pub use report::{ObserveReport, REPORT_SCHEMA, REQUIRED_KEYS};
pub use sink::JsonlSink;
pub use timeseries::{
    DualPoint, SeriesFile, SeriesSink, WindowDelta, WindowSeries, WindowedRecorder, SERIES_SCHEMA,
};

// Re-export the contract so downstream users need only this crate.
pub use occ_sim::probe::{NoopRecorder, Recorder};
