//! Property tests for the tumbling-window telemetry layer:
//!
//! * the window deltas tile the run exactly — summed over all windows
//!   they equal the whole-run `MetricsRecorder` totals (counters,
//!   per-user eviction vector, fault counts, and the merged latency
//!   histogram, exactly) for arbitrary window widths including widths
//!   wider than the run;
//! * swapping recorders at an arbitrary window boundary (the resume
//!   split) reproduces the uninterrupted series exactly.

use occ_baselines::Lru;
use occ_probe::{LogHistogram, MetricsRecorder, WindowedRecorder};
use occ_sim::{FaultHandler, FaultPolicy, PageId, Request, SteppingEngine, Universe, UserId};
use proptest::prelude::*;

/// An arbitrary multi-user request stream with seeded corruption: the
/// selector turns ~1 in 5 records into an out-of-range page or a
/// wrong-owner record, exercising the fault path of both recorders.
fn arb_run() -> impl Strategy<Value = (Universe, Vec<Request>, usize)> {
    (2u32..=4, 2u32..=5).prop_flat_map(|(users, pages_per)| {
        let total = users * pages_per;
        (
            proptest::collection::vec((0..total, 0u8..10), 10..250),
            2..=(total as usize - 1).max(2),
        )
            .prop_map(move |(draws, k)| {
                let universe = Universe::uniform(users, pages_per);
                let requests = draws
                    .iter()
                    .map(|&(p, sel)| {
                        let clean = universe.request(PageId(p));
                        match sel {
                            0 => Request {
                                page: PageId(total + 1 + p),
                                user: UserId(0),
                            },
                            1 => Request {
                                page: clean.page,
                                user: UserId((clean.user.0 + 1) % users),
                            },
                            _ => clean,
                        }
                    })
                    .collect();
                (universe, requests, k.min(total as usize - 1))
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window_sums_equal_whole_run_recorder_totals(
        (universe, requests, k) in arb_run(),
        width in 1u64..600,
    ) {
        // Pair recorder: whole-run totals and timed windows side by
        // side, fed identical hooks (both halves are TIMED, so both see
        // every latency sample).
        let windows = WindowedRecorder::<true>::new(width).with_ring_capacity(usize::MAX);
        let mut eng = SteppingEngine::new(k, universe.clone(), Lru::new())
            .with_recorder((MetricsRecorder::new(), windows));
        let mut handler = FaultHandler::new(FaultPolicy::SkipAndCount, universe.num_users());
        for &r in &requests {
            eng.step_checked(r, &mut handler).expect("skip-and-count absorbs faults");
        }
        eng.flush();
        let end = eng.time();
        let stats = eng.stats().clone();
        let (rec, mut wrec) = eng.into_recorder();
        wrec.finalize(end);
        let series = wrec.into_series();
        let total = series.total();

        // Counters, exactly.
        prop_assert_eq!(total.hits, rec.hits());
        prop_assert_eq!(total.inserts, rec.inserts());
        prop_assert_eq!(total.evictions, rec.evictions());
        prop_assert_eq!(total.flush_evictions, rec.flush_evictions());
        prop_assert_eq!(total.requests(), rec.requests());
        prop_assert_eq!(total.hits + total.misses(), stats.total_hits() + stats.total_misses());

        // Fault counts, exactly.
        prop_assert_eq!(&total.faults, rec.faults());
        prop_assert_eq!(total.faults.total_records(), handler.counters().total_records());

        // Per-user eviction vectors (both count flush victims; pad the
        // lazily-grown vectors to the same length).
        let at = |v: &[u64], u: usize| v.get(u).copied().unwrap_or(0);
        for u in 0..universe.num_users() as usize {
            prop_assert_eq!(
                at(&total.evictions_by_user, u),
                at(rec.evictions_by_user(), u),
                "evictions for user {}", u
            );
        }

        // The merged latency histogram is exactly the whole-run one:
        // same samples, and histogram merge is exact bucket arithmetic.
        let mut merged = LogHistogram::new();
        for w in &series.windows {
            if let Some(h) = &w.latency_ns {
                merged.merge(h);
            }
        }
        prop_assert_eq!(&merged, rec.latency_ns());

        // Windows tile [0, end): contiguous, non-overlapping, all but
        // the last exactly `width` wide.
        let mut expect_start = 0;
        for (i, w) in series.windows.iter().enumerate() {
            prop_assert_eq!(w.start, expect_start, "window {} start", i);
            prop_assert!(w.end <= end.max(w.start));
            if i + 1 < series.windows.len() {
                prop_assert_eq!(w.end - w.start, width.max(1));
            }
            expect_start = w.end;
        }
    }

    #[test]
    fn recorder_swap_at_any_boundary_reproduces_the_series(
        (universe, requests, k) in arb_run(),
        width in 1u64..400,
        split_windows in 0u64..20,
    ) {
        // Whole, uninterrupted run.
        let run = |swap_at: Option<u64>| {
            let rec = WindowedRecorder::<false>::new(width).with_ring_capacity(usize::MAX);
            let mut eng = SteppingEngine::new(k, universe.clone(), Lru::new())
                .with_recorder(rec);
            let mut handler =
                FaultHandler::new(FaultPolicy::SkipAndCount, universe.num_users());
            let mut prefix = None;
            for &r in &requests {
                if swap_at == Some(eng.time()) && prefix.is_none() {
                    // The "kill": finalize the old recorder where it
                    // stands and hand the engine a fresh one resuming at
                    // the same boundary.
                    let t = eng.time();
                    let mut old = std::mem::replace(
                        eng.recorder_mut(),
                        WindowedRecorder::<false>::starting_at(width, t)
                            .with_ring_capacity(usize::MAX),
                    );
                    old.finalize(eng.time());
                    prefix = Some(old.into_series());
                }
                eng.step_checked(r, &mut handler)
                    .expect("skip-and-count absorbs faults");
            }
            let end = eng.time();
            let mut rec = eng.into_recorder();
            rec.finalize(end);
            let tail = rec.into_series();
            match prefix {
                None => tail,
                Some(mut p) => {
                    p.windows.extend(tail.windows);
                    p.dropped += tail.dropped;
                    p
                }
            }
        };

        let whole = run(None);
        let boundary = (split_windows * width.max(1)).min(requests.len() as u64 / width.max(1) * width.max(1));
        let split = run(Some(boundary));
        prop_assert_eq!(&split.windows, &whole.windows, "split at t={}", boundary);
    }
}
