//! Property tests for the instrumentation layer:
//!
//! * attaching a full recorder (metrics + JSONL sink) never changes what
//!   the engine computes — counters and eviction sequences are identical
//!   to the `NoopRecorder` run;
//! * histogram merging is exact: the merge of arbitrary shards equals
//!   the histogram of the whole sample set, and quantiles respect the
//!   log-linear error bound;
//! * histogram JSON round-trips losslessly.

use occ_baselines::{Fifo, Lru};
use occ_probe::{JsonlSink, LogHistogram, MetricsRecorder};
use occ_sim::{ReplacementPolicy, Simulator, Trace, Universe};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = (Universe, Vec<u32>, usize)> {
    (2u32..=4, 2u32..=5).prop_flat_map(|(users, pages_per)| {
        let total = users * pages_per;
        (
            proptest::collection::vec(0..total, 10..300),
            2..=(total as usize - 1).max(2),
        )
            .prop_map(move |(pages, k)| {
                (
                    Universe::uniform(users, pages_per),
                    pages,
                    k.min(total as usize - 1),
                )
            })
    })
}

fn run_both<P: ReplacementPolicy>(make: impl Fn() -> P, trace: &Trace, k: usize) {
    // Plain run: NoopRecorder path.
    let plain = Simulator::new(k)
        .record_events(true)
        .flush_at_end(true)
        .run(&mut make(), trace);
    // Fully recorded run: timed metrics + a streaming sink, fanned out.
    let mut rec = MetricsRecorder::new();
    let mut pair = (&mut rec, JsonlSink::new(Vec::new()));
    let recorded = Simulator::new(k)
        .record_events(true)
        .flush_at_end(true)
        .run_recorded(&mut make(), trace, &mut pair);

    prop_assert_eq!(&plain.stats, &recorded.stats);
    prop_assert_eq!(&plain.final_cache, &recorded.final_cache);
    prop_assert_eq!(
        plain.events.as_ref().unwrap().eviction_sequence(),
        recorded.events.as_ref().unwrap().eviction_sequence()
    );
    // The recorder's own counters agree with the engine's.
    prop_assert_eq!(rec.hits(), recorded.stats.total_hits());
    prop_assert_eq!(
        rec.inserts() + rec.evictions(),
        recorded.stats.total_misses()
    );
    prop_assert_eq!(
        rec.evictions() + rec.flush_evictions(),
        recorded.stats.total_evictions()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recorded_runs_are_byte_identical((universe, pages, k) in arb_trace()) {
        let trace = Trace::from_page_indices(&universe, &pages);
        run_both(Lru::new, &trace, k);
        run_both(Fifo::new, &trace, k);
    }

    #[test]
    fn histogram_merge_of_shards_equals_whole(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..400),
        shards in 1usize..6,
    ) {
        let mut whole = LogHistogram::new();
        let mut parts = vec![LogHistogram::new(); shards];
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = LogHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
    }

    #[test]
    fn histogram_quantiles_respect_error_bound(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut h = LogHistogram::new();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
        let exact = sorted[rank];
        let est = h.quantile(q);
        // The estimate is the inclusive upper edge of the exact value's
        // bucket: never below the true sample quantile, and within the
        // 1/32 relative bound above it.
        prop_assert!(est >= exact, "estimate {est} below exact {exact}");
        prop_assert!(
            est - exact <= (exact >> 5),
            "estimate {est} too far above exact {exact}"
        );
        prop_assert!(est <= h.max());
    }

    #[test]
    fn histogram_json_round_trip(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let back = LogHistogram::from_json(&h.to_json()).unwrap();
        prop_assert_eq!(&back, &h);
    }
}
