//! Property tests for checkpoint/resume identity.
//!
//! The robustness contract: a run that is interrupted at *any* point,
//! serialized to checkpoint JSON, deserialized, and resumed must be
//! byte-identical to the uninterrupted run — same per-step outcomes
//! (hit / insert / who was evicted), same counters, and the same final
//! snapshot (which captures the cache, the policy's internal state, and
//! — for `RandomizedMarking` — the RNG words).
//!
//! The "relay" form below is stronger than a single cut: the engine is
//! torn down and rebuilt from JSON every `stride` steps, so one case
//! exercises many resume points.

use occ_baselines::{Fifo, Lfu, Lru, Marking, RandomizedMarking};
use occ_core::{ConvexCaching, CostProfile, Linear, Monomial};
use occ_probe::{snapshot_from_json, snapshot_to_json};
use occ_sim::prelude::*;
use proptest::prelude::*;

fn arb_world() -> impl Strategy<Value = (Universe, Vec<u32>, usize, usize)> {
    (2u32..=4, 2u32..=6).prop_flat_map(|(users, pages_per)| {
        let total = users * pages_per;
        (
            proptest::collection::vec(0..total, 20..300),
            2..=(total as usize - 1).max(2),
            1usize..60,
        )
            .prop_map(move |(pages, k, stride)| {
                (
                    Universe::uniform(users, pages_per),
                    pages,
                    k.min(total as usize - 1),
                    stride,
                )
            })
    })
}

/// Run `reqs` straight through, and again with a JSON-round-tripped
/// engine teardown/rebuild every `stride` steps; assert both paths are
/// indistinguishable.
fn relay_matches_uninterrupted<P: ReplacementPolicy>(
    make: impl Fn() -> P,
    universe: &Universe,
    reqs: &[Request],
    k: usize,
    stride: usize,
) {
    let mut full = SteppingEngine::new(k, universe.clone(), make());
    let mut full_outcomes = Vec::with_capacity(reqs.len());
    for &r in reqs {
        full_outcomes.push(full.step(r));
    }
    let full_snap = full.snapshot().unwrap();

    let mut eng = SteppingEngine::new(k, universe.clone(), make());
    let mut outcomes = Vec::with_capacity(reqs.len());
    for (i, &r) in reqs.iter().enumerate() {
        if i > 0 && i % stride == 0 {
            let snap = eng.snapshot().unwrap();
            let restored = snapshot_from_json(&snapshot_to_json(&snap)).unwrap();
            prop_assert_eq!(&restored, &snap, "JSON round trip must be lossless");
            eng = SteppingEngine::from_snapshot(&restored, make()).unwrap();
        }
        outcomes.push(eng.step(r));
    }

    // Identical eviction decisions at every step…
    prop_assert_eq!(&full_outcomes, &outcomes);
    // …identical counters…
    prop_assert_eq!(full.stats(), eng.stats());
    // …and a byte-identical final snapshot: cache contents, per-user
    // stats, and the policy's full state bag (incl. RNG words).
    let final_snap = eng.snapshot().unwrap();
    prop_assert_eq!(&full_snap, &final_snap);
    prop_assert_eq!(snapshot_to_json(&full_snap), snapshot_to_json(&final_snap));
}

/// Same relay, but over a corrupted stream under skip-and-count: fault
/// counters travel through the checkpoint and the absorbed-fault totals
/// match the uninterrupted checked run.
fn relay_matches_checked<P: ReplacementPolicy>(
    make: impl Fn() -> P,
    universe: &Universe,
    reqs: &[Request],
    k: usize,
    stride: usize,
    policy: FaultPolicy,
) {
    let mut full = SteppingEngine::new(k, universe.clone(), make());
    let mut full_handler = FaultHandler::new(policy, universe.num_users());
    for &r in reqs {
        full.step_checked(r, &mut full_handler).unwrap();
    }
    let full_snap = full.snapshot_with_faults(&full_handler).unwrap();

    let mut eng = SteppingEngine::new(k, universe.clone(), make());
    let mut handler = FaultHandler::new(policy, universe.num_users());
    for (i, &r) in reqs.iter().enumerate() {
        if i > 0 && i % stride == 0 {
            let snap = eng.snapshot_with_faults(&handler).unwrap();
            let restored = snapshot_from_json(&snapshot_to_json(&snap)).unwrap();
            prop_assert_eq!(&restored, &snap);
            eng = SteppingEngine::from_snapshot(&restored, make()).unwrap();
            handler = FaultHandler::new(policy, universe.num_users());
            handler
                .restore(restored.faults.clone(), &restored.quarantined)
                .unwrap();
            for &u in &restored.quarantined {
                eng.remove_user_externally(u);
            }
        }
        eng.step_checked(r, &mut handler).unwrap();
    }

    prop_assert_eq!(full.stats(), eng.stats());
    prop_assert_eq!(full_handler.counters(), handler.counters());
    prop_assert_eq!(
        full_handler.quarantined_users(),
        handler.quarantined_users()
    );
    let final_snap = eng.snapshot_with_faults(&handler).unwrap();
    prop_assert_eq!(snapshot_to_json(&full_snap), snapshot_to_json(&final_snap));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn resume_is_byte_identical_for_every_policy(
        (universe, pages, k, stride) in arb_world(),
        rng_seed in 0u64..u64::MAX,
    ) {
        let trace = Trace::from_page_indices(&universe, &pages);
        let reqs = trace.requests();
        relay_matches_uninterrupted(Lru::new, &universe, reqs, k, stride);
        relay_matches_uninterrupted(Fifo::new, &universe, reqs, k, stride);
        relay_matches_uninterrupted(Lfu::new, &universe, reqs, k, stride);
        relay_matches_uninterrupted(Marking::new, &universe, reqs, k, stride);
        // The randomized policy is the acid test: its xoshiro state must
        // travel through the checkpoint bit-for-bit.
        relay_matches_uninterrupted(
            || RandomizedMarking::new(rng_seed),
            &universe, reqs, k, stride,
        );
        let costs = CostProfile::uniform(universe.num_users(), Monomial::power(2.0));
        relay_matches_uninterrupted(
            || ConvexCaching::new(costs.clone()),
            &universe, reqs, k, stride,
        );
    }

    #[test]
    fn resume_preserves_fault_state_across_checkpoints(
        (universe, pages, k, stride) in arb_world(),
        plan_seed in 0u64..u64::MAX,
        page_rate in 0.0f64..0.3,
        owner_rate in 0.0f64..0.3,
        quarantine in 0u8..2,
    ) {
        let quarantine = quarantine == 1;
        let trace = Trace::from_page_indices(&universe, &pages);
        let plan = occ_workloads::FaultPlan::seeded(plan_seed)
            .with_page_rate(page_rate)
            .with_owner_rate(owner_rate);
        let (reqs, _injected) = plan.corrupt_trace(&trace);
        let policy = if quarantine {
            FaultPolicy::QuarantineUser
        } else {
            FaultPolicy::SkipAndCount
        };
        relay_matches_checked(Lru::new, &universe, &reqs, k, stride, policy);
        let costs = CostProfile::uniform(universe.num_users(), Linear::unit());
        relay_matches_checked(
            || ConvexCaching::new(costs.clone()),
            &universe, &reqs, k, stride, policy,
        );
    }
}
