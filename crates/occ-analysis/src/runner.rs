//! Experiment running: policy comparison on a trace, Theorem 1.1/1.3
//! bound checks, and parallel parameter sweeps.

use occ_core::{theorem_1_1_rhs, theorem_1_3_rhs, CostProfile};
use occ_sim::{ReplacementPolicy, SimResult, Simulator, Trace};

/// The cost outcome of one policy on one trace.
#[derive(Clone, Debug)]
pub struct CostReport {
    /// Policy name.
    pub name: String,
    /// Per-user miss counts `a_i`.
    pub misses: Vec<u64>,
    /// Total convex cost `Σ f_i(a_i)`.
    pub cost: f64,
    /// Total hits (for hit-rate columns).
    pub hits: u64,
    /// Trace length.
    pub steps: u64,
}

impl CostReport {
    /// Build from a simulation result.
    pub fn from_result(name: String, result: &SimResult, costs: &CostProfile) -> Self {
        let misses = result.miss_vector();
        CostReport {
            name,
            cost: costs.total_cost(&misses),
            misses,
            hits: result.stats.total_hits(),
            steps: result.steps,
        }
    }

    /// Overall miss rate.
    pub fn miss_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.misses.iter().sum::<u64>() as f64 / self.steps as f64
        }
    }
}

/// Run one policy on `trace` with cache size `k` and report its cost.
pub fn evaluate_policy<P: ReplacementPolicy>(
    policy: &mut P,
    trace: &Trace,
    k: usize,
    costs: &CostProfile,
) -> CostReport {
    policy.reset();
    let result = Simulator::new(k).run(policy, trace);
    CostReport::from_result(policy.name(), &result, costs)
}

/// Run a suite of policies on the same trace.
pub fn compare_policies(
    policies: &mut [Box<dyn ReplacementPolicy>],
    trace: &Trace,
    k: usize,
    costs: &CostProfile,
) -> Vec<CostReport> {
    policies
        .iter_mut()
        .map(|p| evaluate_policy(p, trace, k, costs))
        .collect()
}

/// One checked instance of Theorem 1.1 (or 1.3 via `h`).
#[derive(Clone, Debug)]
pub struct BoundCheck {
    /// Online total cost `Σ f_i(a_i)`.
    pub online_cost: f64,
    /// Offline reference cost `Σ f_i(b_i)`.
    pub offline_cost: f64,
    /// Theorem right-hand side `Σ f_i(factor · b_i)`.
    pub rhs: f64,
    /// Plain cost ratio `online/offline` (∞ when offline = 0 and online > 0).
    pub ratio: f64,
    /// Whether `online ≤ rhs` (the theorem's claim).
    pub satisfied: bool,
}

fn make_check(online_cost: f64, offline_cost: f64, rhs: f64) -> BoundCheck {
    let ratio = if offline_cost > 0.0 {
        online_cost / offline_cost
    } else if online_cost > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    BoundCheck {
        online_cost,
        offline_cost,
        rhs,
        ratio,
        satisfied: online_cost <= rhs * (1.0 + 1e-9) + 1e-9,
    }
}

/// Check Theorem 1.1: online misses `a`, offline misses `b`, curvature
/// `alpha`, cache size `k`.
pub fn check_theorem_1_1(
    costs: &CostProfile,
    online_misses: &[u64],
    offline_misses: &[u64],
    alpha: f64,
    k: usize,
) -> BoundCheck {
    check_theorem_1_1_scaled(costs, online_misses, offline_misses, alpha, k, 1.0)
}

/// [`check_theorem_1_1`] with the right-hand side multiplied by
/// `rhs_scale`. `1.0` is the theorem as stated; the conformance harness
/// uses `rhs_scale < 1` as its deliberately-weakened fixture (the bound
/// is tightened until a correct implementation must fail it).
pub fn check_theorem_1_1_scaled(
    costs: &CostProfile,
    online_misses: &[u64],
    offline_misses: &[u64],
    alpha: f64,
    k: usize,
    rhs_scale: f64,
) -> BoundCheck {
    make_check(
        costs.total_cost(online_misses),
        costs.total_cost(offline_misses),
        rhs_scale * theorem_1_1_rhs(costs, offline_misses, alpha, k),
    )
}

/// Check Theorem 1.3: offline runs with cache `h ≤ k`.
pub fn check_theorem_1_3(
    costs: &CostProfile,
    online_misses: &[u64],
    offline_misses_h: &[u64],
    alpha: f64,
    k: usize,
    h: usize,
) -> BoundCheck {
    check_theorem_1_3_scaled(costs, online_misses, offline_misses_h, alpha, k, h, 1.0)
}

/// [`check_theorem_1_3`] with the right-hand side multiplied by
/// `rhs_scale` (see [`check_theorem_1_1_scaled`]).
#[allow(clippy::too_many_arguments)]
pub fn check_theorem_1_3_scaled(
    costs: &CostProfile,
    online_misses: &[u64],
    offline_misses_h: &[u64],
    alpha: f64,
    k: usize,
    h: usize,
    rhs_scale: f64,
) -> BoundCheck {
    make_check(
        costs.total_cost(online_misses),
        costs.total_cost(offline_misses_h),
        rhs_scale * theorem_1_3_rhs(costs, offline_misses_h, alpha, k, h),
    )
}

/// Parallel map over sweep points, preserving input order. Uses
/// `std::thread::scope` with the output split into disjoint `&mut`
/// chunks, one per worker: no locks, no per-slot boxing, no atomics on
/// the write path.
pub fn parallel_sweep<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // Split items and output into matching contiguous chunks. Chunk i
    // covers [i*chunk, …): every worker owns its output window outright,
    // so writes need no synchronization at all. Contiguous stripes also
    // keep each worker's writes on its own cache lines (no false sharing
    // beyond the two chunk-boundary lines).
    let chunk = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_baselines::{Fifo, Lru};
    use occ_core::Monomial;
    use occ_sim::Universe;

    fn trace() -> Trace {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..300u32).map(|i| (i * 7 + 1) % 6).collect();
        Trace::from_page_indices(&u, &pages)
    }

    #[test]
    fn compare_runs_all_policies() {
        let t = trace();
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let mut suite: Vec<Box<dyn ReplacementPolicy>> =
            vec![Box::new(Lru::new()), Box::new(Fifo::new())];
        let reports = compare_policies(&mut suite, &t, 3, &costs);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].name, "lru");
        for r in &reports {
            assert!(r.cost > 0.0);
            assert_eq!(r.steps, 300);
            assert!(r.miss_rate() > 0.0 && r.miss_rate() <= 1.0);
        }
    }

    #[test]
    fn empty_run_miss_rate_is_zero_not_nan() {
        let u = Universe::uniform(2, 3);
        let t = Trace::from_page_indices(&u, &[]);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let report = evaluate_policy(&mut Lru::new(), &t, 3, &costs);
        assert_eq!(report.steps, 0);
        assert_eq!(report.miss_rate(), 0.0);
        assert_eq!(report.cost, 0.0);
    }

    #[test]
    fn bound_check_math() {
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        // online 3 misses (cost 9), offline 1 miss (cost 1), α=2, k=2 →
        // rhs = f(4) = 16 ≥ 9.
        let c = check_theorem_1_1(&costs, &[3], &[1], 2.0, 2);
        assert!(c.satisfied);
        assert_eq!(c.online_cost, 9.0);
        assert_eq!(c.rhs, 16.0);
        assert_eq!(c.ratio, 9.0);
        // Violation detected when online exceeds the rhs.
        let c2 = check_theorem_1_1(&costs, &[10], &[1], 2.0, 2);
        assert!(!c2.satisfied);
    }

    #[test]
    fn scaled_check_tightens_the_bound() {
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        // Unscaled: online 9 ≤ rhs 16. Scaled by 0.5: rhs 8 < 9 → FAIL.
        assert!(check_theorem_1_1_scaled(&costs, &[3], &[1], 2.0, 2, 1.0).satisfied);
        let weak = check_theorem_1_1_scaled(&costs, &[3], &[1], 2.0, 2, 0.5);
        assert!(!weak.satisfied);
        assert_eq!(weak.rhs, 8.0);
        // Theorem 1.3 variant scales the same way.
        let c = check_theorem_1_3_scaled(&costs, &[3], &[2], 1.0, 4, 3, 1.0);
        let w = check_theorem_1_3_scaled(&costs, &[3], &[2], 1.0, 4, 3, 0.1);
        assert_eq!(w.rhs, 0.1 * c.rhs);
    }

    #[test]
    fn zero_offline_cost_gives_infinite_ratio() {
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        let c = check_theorem_1_1(&costs, &[5], &[0], 2.0, 4);
        assert!(c.ratio.is_infinite());
        assert!(!c.satisfied); // rhs = f(0) = 0 < online
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_sweep(items.clone(), |&i| i * i);
        assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
        let empty: Vec<u64> = parallel_sweep(Vec::<u64>::new(), |&i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn bicriteria_check_uses_inflated_factor() {
        let costs = CostProfile::uniform(1, Monomial::power(1.0));
        // α=1, k=4, h=3 ⇒ factor 4/2 = 2: rhs = f(2·b).
        let c = check_theorem_1_3(&costs, &[3], &[2], 1.0, 4, 3);
        assert_eq!(c.rhs, 4.0);
        assert!(c.satisfied);
    }
}
