//! Small summary-statistics helpers for experiment reports.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than two
/// points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Geometric mean of positive values (ratios compose multiplicatively).
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Percentile by linear interpolation; `q` in `[0, 1]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (pos - lo as f64) * (v[hi] - v[lo])
    }
}

/// Max of a slice (−∞ when empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138089935299395).abs() < 1e-9);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn max_of_slice() {
        assert_eq!(max(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }
}
