//! Reuse distances and miss-ratio curves (Mattson's stack algorithm).
//!
//! LRU is a *stack algorithm*: a request hits in an LRU cache of size `k`
//! iff its reuse (stack) distance is `≤ k`. One pass over the trace
//! therefore yields LRU miss counts for **every** cache size at once —
//! the classical tool for sizing shared caches, and the input to the
//! cost-vs-cache-size experiment (how the convex objective decays with
//! `k` for each policy).
//!
//! The implementation uses the standard order-statistics trick: a
//! Fenwick tree over time stamps counts how many *distinct* pages were
//! touched since a page's previous access, giving `O(T log T)` overall.

use occ_sim::Trace;

/// Fenwick (binary indexed) tree over `n` slots.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of slots `0..=i`.
    fn prefix(&self, mut i: usize) -> u32 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Reuse distances of every request: `distances[t]` is the number of
/// distinct pages referenced since the previous access to `p_t`
/// (`None` for first accesses — cold misses).
pub fn reuse_distances(trace: &Trace) -> Vec<Option<u32>> {
    let t_len = trace.len();
    let pages = trace.universe().num_pages() as usize;
    let mut last_access: Vec<Option<usize>> = vec![None; pages];
    let mut fen = Fenwick::new(t_len);
    let mut out = Vec::with_capacity(t_len);
    for (t, r) in trace.iter() {
        let t = t as usize;
        let pi = r.page.index();
        match last_access[pi] {
            None => out.push(None),
            Some(prev) => {
                // Distinct pages touched in (prev, t) = active stamps in
                // that range (each distinct page keeps exactly one stamp,
                // at its most recent access).
                let between = fen.prefix(t.saturating_sub(1)) as i64 - fen.prefix(prev) as i64;
                out.push(Some(between as u32 + 1)); // +1 for the page itself
            }
        }
        if let Some(prev) = last_access[pi] {
            fen.add(prev, -1);
        }
        fen.add(t, 1);
        last_access[pi] = Some(t);
    }
    out
}

/// A miss-ratio curve: LRU miss counts for every cache size `1..=max_k`,
/// overall and per user.
#[derive(Clone, Debug)]
pub struct MissRatioCurve {
    /// `misses[k-1]` = total LRU misses with cache size `k`.
    pub misses: Vec<u64>,
    /// `per_user[u][k-1]` = user `u`'s LRU misses with cache size `k`.
    pub per_user: Vec<Vec<u64>>,
    /// Trace length.
    pub requests: u64,
}

impl MissRatioCurve {
    /// Miss ratio at cache size `k` (`0.0` for an empty trace).
    pub fn ratio(&self, k: usize) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses[k - 1] as f64 / self.requests as f64
        }
    }

    /// Per-user miss vector at cache size `k` (for cost evaluation).
    pub fn miss_vector(&self, k: usize) -> Vec<u64> {
        self.per_user.iter().map(|u| u[k - 1]).collect()
    }
}

/// Compute the LRU miss-ratio curve for all cache sizes up to `max_k` in
/// one pass (`O(T log T + max_k · (T_hist))`).
pub fn lru_mrc(trace: &Trace, max_k: usize) -> MissRatioCurve {
    assert!(max_k >= 1);
    let num_users = trace.universe().num_users() as usize;
    let distances = reuse_distances(trace);
    // Histogram per user: hist[u][d] = accesses of user u with reuse
    // distance d (d capped at max_k+1; cold misses counted separately).
    let mut hist: Vec<Vec<u64>> = vec![vec![0; max_k + 2]; num_users];
    let mut cold: Vec<u64> = vec![0; num_users];
    for (t, r) in trace.iter() {
        match distances[t as usize] {
            None => cold[r.user.index()] += 1,
            Some(d) => {
                let d = (d as usize).min(max_k + 1);
                hist[r.user.index()][d] += 1;
            }
        }
    }
    // Misses at size k = cold + accesses with distance > k.
    let mut per_user = vec![vec![0u64; max_k]; num_users];
    for u in 0..num_users {
        // suffix[d] = Σ_{d' ≥ d} hist[u][d'].
        let mut suffix = vec![0u64; max_k + 3];
        for d in (1..=max_k + 1).rev() {
            suffix[d] = suffix[d + 1] + hist[u][d];
        }
        for k in 1..=max_k {
            per_user[u][k - 1] = cold[u] + suffix[k + 1];
        }
    }
    let misses = (0..max_k)
        .map(|i| per_user.iter().map(|u| u[i]).sum())
        .collect();
    MissRatioCurve {
        misses,
        per_user,
        requests: trace.len() as u64,
    }
}

/// Evaluate the convex objective along the curve:
/// `cost_curve(costs)[k-1] = Σ_i f_i(misses_i(k))` for LRU.
pub fn lru_cost_curve(mrc: &MissRatioCurve, costs: &occ_core::CostProfile) -> Vec<f64> {
    (1..=mrc.misses.len())
        .map(|k| costs.total_cost(&mrc.miss_vector(k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_baselines::Lru;
    use occ_core::{CostProfile, Monomial};
    use occ_sim::{Simulator, Universe};

    fn trace(pages: &[u32], universe_pages: u32) -> Trace {
        Trace::from_page_indices(&Universe::single_user(universe_pages), pages)
    }

    #[test]
    fn reuse_distance_basics() {
        // 0 1 0: distance of the second 0 is 2 (pages {1, 0}).
        let t = trace(&[0, 1, 0], 2);
        let d = reuse_distances(&t);
        assert_eq!(d, vec![None, None, Some(2)]);
    }

    #[test]
    fn repeated_page_has_distance_one() {
        let t = trace(&[3, 3, 3], 4);
        let d = reuse_distances(&t);
        assert_eq!(d, vec![None, Some(1), Some(1)]);
    }

    #[test]
    fn distance_counts_distinct_not_total() {
        // 0 1 1 1 0: only one distinct page between the 0s.
        let t = trace(&[0, 1, 1, 1, 0], 2);
        let d = reuse_distances(&t);
        assert_eq!(d[4], Some(2));
    }

    #[test]
    fn mrc_matches_direct_lru_simulation() {
        let u = Universe::uniform(2, 4);
        let pages: Vec<u32> = (0..500u32).map(|i| (i * 13 + 7) % 8).collect();
        let t = Trace::from_page_indices(&u, &pages);
        let mrc = lru_mrc(&t, 8);
        for k in 1..=8usize {
            let direct = Simulator::new(k).run(&mut Lru::new(), &t);
            assert_eq!(
                mrc.misses[k - 1],
                direct.total_misses(),
                "total mismatch at k={k}"
            );
            assert_eq!(
                mrc.miss_vector(k),
                direct.miss_vector(),
                "per-user mismatch at k={k}"
            );
        }
    }

    #[test]
    fn empty_trace_ratio_is_zero_not_nan() {
        let t = trace(&[], 4);
        let mrc = lru_mrc(&t, 4);
        assert_eq!(mrc.requests, 0);
        for k in 1..=4 {
            assert_eq!(mrc.ratio(k), 0.0);
            assert_eq!(mrc.miss_vector(k), vec![0]);
        }
    }

    #[test]
    fn mrc_is_monotone_in_k() {
        let u = Universe::single_user(16);
        let pages: Vec<u32> = (0..2000u32).map(|i| (i * 7 + i / 3) % 16).collect();
        let t = Trace::from_page_indices(&u, &pages);
        let mrc = lru_mrc(&t, 16);
        for k in 1..16 {
            assert!(
                mrc.misses[k] <= mrc.misses[k - 1],
                "more cache cannot hurt LRU (stack property)"
            );
        }
        assert!(mrc.ratio(16) <= mrc.ratio(1));
    }

    #[test]
    fn cost_curve_applies_profile() {
        let u = Universe::uniform(2, 2);
        let t = Trace::from_page_indices(&u, &[0, 2, 1, 3, 0, 2, 1, 3]);
        let mrc = lru_mrc(&t, 4);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let curve = lru_cost_curve(&mrc, &costs);
        assert_eq!(curve.len(), 4);
        // k = 4 holds everything: only the 4 cold misses remain.
        assert_eq!(mrc.miss_vector(4), vec![2, 2]);
        assert_eq!(curve[3], 8.0);
        // Cost is non-increasing in k.
        for k in 1..4 {
            assert!(curve[k] <= curve[k - 1] + 1e-9);
        }
    }
}
