//! Minimal table rendering: markdown for the terminal, CSV for files.
//!
//! The experiment binaries print the same rows the paper's results
//! describe; keeping the renderer local avoids a formatting dependency.

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a GitHub-flavored markdown table with padded columns.
    pub fn to_markdown(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = width.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&fmt_row(&sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float compactly for tables (3 significant-ish decimals,
/// scientific for very large/small magnitudes).
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if !v.is_finite() {
        format!("{v}")
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else if (v - v.round()).abs() < 1e-9 && v.abs() < 1e6 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "2.5"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines.iter().all(|l| l.starts_with('|') && l.ends_with('|')));
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "all rows same width");
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "q\"r"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"q\"\"r\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new(vec!["a"]).row(vec!["1", "2"]);
    }

    #[test]
    fn fnum_forms() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(3.25), "3.250");
        assert_eq!(fnum(1.5e7), "1.50e7");
        assert_eq!(fnum(2e-4), "2.00e-4");
    }
}
