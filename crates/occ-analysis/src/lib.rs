#![warn(missing_docs)]
//! Experiment harness: policy comparison, theorem bound checks, summary
//! statistics, parallel sweeps, and table rendering.
//!
//! The binaries in `occ-bench` compose these pieces into the E1–E8
//! experiments indexed in DESIGN.md.

pub mod epochs;
pub mod mrc;
pub mod runner;
pub mod stats;
pub mod table;

pub use epochs::{epoch_costs, EpochCosts};
pub use mrc::{lru_cost_curve, lru_mrc, reuse_distances, MissRatioCurve};
pub use runner::{
    check_theorem_1_1, check_theorem_1_1_scaled, check_theorem_1_3, check_theorem_1_3_scaled,
    compare_policies, evaluate_policy, parallel_sweep, BoundCheck, CostReport,
};
pub use stats::{geomean, max, mean, percentile, stddev};
pub use table::{fnum, Table};
