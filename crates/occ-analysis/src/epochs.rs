//! Windowed (per-epoch) cost accounting.
//!
//! The paper's motivation (§1.1) prices misses *per time window*: "a user
//! can tolerate up to around M misses in a time window of T". The
//! theorems charge total misses, but the SQLVM deployment \[14\] meters
//! SLAs per window. This module evaluates
//! `Σ_epochs Σ_i f_i(misses_i(epoch))` for any policy, so experiments can
//! quantify the gap between the two accountings.
//!
//! By convexity and `f(0) = 0`, splitting a fixed miss total across
//! windows can only *reduce* the cost (`f(a) + f(b) ≤ f(a+b)` for
//! superadditive convex `f`), so the windowed cost is a lower bound on
//! the total-miss cost — asserted in the tests.

use occ_core::CostProfile;
use occ_sim::{ReplacementPolicy, SteppingEngine, Trace};

/// Per-epoch cost breakdown of one run.
#[derive(Clone, Debug)]
pub struct EpochCosts {
    /// `costs[e]` = `Σ_i f_i(misses_i during epoch e)`.
    pub per_epoch: Vec<f64>,
    /// Per-user miss counts per epoch (`misses[e][u]`).
    pub epoch_misses: Vec<Vec<u64>>,
    /// Final cumulative per-user miss counts.
    pub total_misses: Vec<u64>,
}

impl EpochCosts {
    /// Sum of per-epoch costs (the windowed objective).
    pub fn windowed_total(&self) -> f64 {
        self.per_epoch.iter().sum()
    }

    /// The paper's total-miss objective on the same run.
    pub fn unwindowed_total(&self, costs: &CostProfile) -> f64 {
        costs.total_cost(&self.total_misses)
    }
}

/// Run `policy` over `trace` with cache size `k`, charging each user's
/// cost function on its miss count *within each epoch* of `epoch_len`
/// requests (the final partial epoch counts too).
pub fn epoch_costs<P: ReplacementPolicy>(
    policy: P,
    trace: &Trace,
    k: usize,
    costs: &CostProfile,
    epoch_len: u64,
) -> EpochCosts {
    assert!(epoch_len >= 1);
    let universe = trace.universe().clone();
    let num_users = universe.num_users() as usize;
    let mut engine = SteppingEngine::new(k, universe, policy);
    let mut per_epoch = Vec::new();
    let mut epoch_misses = Vec::new();
    let mut at_epoch_start = vec![0u64; num_users];

    let flush_epoch = |engine: &SteppingEngine<P>,
                       at_start: &mut Vec<u64>,
                       per_epoch: &mut Vec<f64>,
                       epoch_misses: &mut Vec<Vec<u64>>| {
        let now = engine.stats().miss_vector();
        let in_epoch: Vec<u64> = now
            .iter()
            .zip(at_start.iter())
            .map(|(&n, &s)| n - s)
            .collect();
        per_epoch.push(costs.total_cost(&in_epoch));
        epoch_misses.push(in_epoch);
        *at_start = now;
    };

    for (t, req) in trace.iter() {
        engine.step(req);
        if (t + 1) % epoch_len == 0 {
            flush_epoch(
                &engine,
                &mut at_epoch_start,
                &mut per_epoch,
                &mut epoch_misses,
            );
        }
    }
    if !(trace.len() as u64).is_multiple_of(epoch_len) {
        flush_epoch(
            &engine,
            &mut at_epoch_start,
            &mut per_epoch,
            &mut epoch_misses,
        );
    }

    EpochCosts {
        per_epoch,
        epoch_misses,
        total_misses: engine.stats().miss_vector(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_baselines::Lru;
    use occ_core::{ConvexCaching, Linear, Monomial};
    use occ_sim::Universe;

    fn trace() -> Trace {
        let u = Universe::uniform(2, 4);
        let pages: Vec<u32> = (0..1000u32).map(|i| (i * 11 + 3) % 8).collect();
        Trace::from_page_indices(&u, &pages)
    }

    #[test]
    fn epochs_partition_the_miss_counts() {
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let ec = epoch_costs(Lru::new(), &trace(), 3, &costs, 100);
        assert_eq!(ec.per_epoch.len(), 10);
        // Per-epoch misses sum to the totals.
        let mut summed = vec![0u64; 2];
        for e in &ec.epoch_misses {
            for (u, &m) in e.iter().enumerate() {
                summed[u] += m;
            }
        }
        assert_eq!(summed, ec.total_misses);
    }

    #[test]
    fn windowing_lowers_convex_cost() {
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let ec = epoch_costs(Lru::new(), &trace(), 3, &costs, 100);
        assert!(
            ec.windowed_total() <= ec.unwindowed_total(&costs) + 1e-9,
            "superadditivity: windowed {} vs total {}",
            ec.windowed_total(),
            ec.unwindowed_total(&costs)
        );
    }

    #[test]
    fn windowing_is_neutral_for_linear_costs() {
        let costs = CostProfile::uniform(2, Linear::new(3.0));
        let ec = epoch_costs(Lru::new(), &trace(), 3, &costs, 64);
        assert!((ec.windowed_total() - ec.unwindowed_total(&costs)).abs() < 1e-9);
    }

    #[test]
    fn partial_final_epoch_counted() {
        let costs = CostProfile::uniform(2, Linear::unit());
        let ec = epoch_costs(Lru::new(), &trace(), 3, &costs, 300);
        assert_eq!(ec.per_epoch.len(), 4); // 300+300+300+100
        let total: f64 = ec.per_epoch.iter().sum();
        assert_eq!(total as u64, ec.total_misses.iter().sum::<u64>());
    }

    #[test]
    fn works_with_the_papers_algorithm() {
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let ec = epoch_costs(ConvexCaching::new(costs.clone()), &trace(), 3, &costs, 250);
        assert_eq!(ec.per_epoch.len(), 4);
        assert!(ec.windowed_total() > 0.0);
    }
}
