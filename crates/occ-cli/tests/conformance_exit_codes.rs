//! Black-box exit-code contract for `occ conformance`, exercised
//! against the real binary: 0 on an all-PASS grid, 6 when a bound is
//! violated (the weakened fixture), and the existing 2/3/4 classes for
//! operational failures — so CI scripts can tell "a theorem broke"
//! apart from "the tool broke".

use std::path::PathBuf;
use std::process::{Command, Output};

fn occ(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_occ"))
        .args(args)
        .output()
        .expect("run occ")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("occ-conformance-e2e");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn smoke_grid_exits_zero_and_emits_deterministic_json() {
    let a_path = tmp("verdicts-a.json");
    let b_path = tmp("verdicts-b.json");
    for path in [&a_path, &b_path] {
        let out = occ(&[
            "conformance",
            "--grid",
            "smoke",
            "--seed",
            "7",
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "expected exit 0, got {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("PASS"), "table shows verdicts:\n{stdout}");
        assert!(stdout.contains("VACUOUS"));
        assert!(!stdout.contains("FAIL"), "no cell may fail:\n{stdout}");
    }
    let a = std::fs::read(&a_path).expect("verdicts written");
    let b = std::fs::read(&b_path).expect("verdicts written");
    assert_eq!(a, b, "same grid+seed must be byte-identical");
    let text = String::from_utf8(a).unwrap();
    assert!(text.contains("\"schema\":1"));
    // Determinism also means: no wall-clock keys in the verdict JSON.
    assert!(!text.contains("elapsed") && !text.contains("latency"));
}

#[test]
fn weakened_bounds_exit_six_with_a_shrunk_counterexample() {
    let path = tmp("verdicts-weakened.json");
    let out = occ(&[
        "conformance",
        "--grid",
        "smoke",
        "--weaken",
        "1e-6",
        "--out",
        path.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(6), "conformance FAIL is exit 6");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("conformance"), "classed message: {stderr}");
    let text = std::fs::read_to_string(&path).expect("verdicts written even on FAIL");
    assert!(text.contains("\"verdict\":\"FAIL\""));
    assert!(
        text.contains("\"shrunk\":{\"len\":"),
        "failing cells carry shrunk counterexamples: {text}"
    );
}

#[test]
fn operational_failures_keep_their_existing_codes() {
    // 2: usage (unknown grid / unknown command flag value).
    assert_eq!(
        occ(&["conformance", "--grid", "nope"]).status.code(),
        Some(2)
    );
    assert_eq!(
        occ(&["conformance", "--weaken", "zero"]).status.code(),
        Some(2)
    );
    // 3: i/o (verdicts directed at an unwritable path).
    assert_eq!(
        occ(&[
            "conformance",
            "--grid",
            "smoke",
            "--out",
            "/nonexistent-dir/v.json"
        ])
        .status
        .code(),
        Some(3)
    );
    // 4: parse (report fed garbage) — unchanged by the new command.
    let garbage = tmp("garbage.json");
    std::fs::write(&garbage, "{not json").unwrap();
    assert_eq!(
        occ(&["report", "--in", garbage.to_str().unwrap()])
            .status
            .code(),
        Some(4)
    );
    // 2: unknown subcommand stays a usage error.
    assert_eq!(occ(&["conform"]).status.code(), Some(2));
}
