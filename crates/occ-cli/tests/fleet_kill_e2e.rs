//! End-to-end crash test for the supervised fleet: SIGKILL the real
//! `occ fleet` process mid-run, then resume from its per-shard
//! checkpoint directory and verify the stitched window series equals
//! the uninterrupted run byte-for-byte. This is the integration-level
//! counterpart of the in-process recovery property test in occ-fleet —
//! here nothing is simulated, the process actually dies.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const LEN: &str = "4M";
const WINDOW: &str = "25k";
const WIDTH: u64 = 25_000;

fn occ() -> Command {
    Command::new(env!("CARGO_BIN_EXE_occ"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("occ-fleet-kill-e2e");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn fleet_args(cmd: &mut Command, ckpt_dir: &Path) {
    cmd.args([
        "fleet",
        "--scenario",
        "two-tier",
        "--shards",
        "4",
        "--len",
        LEN,
        "--seed",
        "11",
        "--policy",
        "lru",
        "--window",
        WINDOW,
        "--supervise",
        "on",
        "--checkpoint-dir",
        ckpt_dir.to_str().unwrap(),
    ]);
}

fn ckpt_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}.ckpt.json"))
}

fn series_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}.series.jsonl"))
}

/// Window lines of a per-shard series file: skip the header, drop the
/// checksum trailer (killed runs legitimately have none), and drop a
/// torn trailing line if the kill landed mid-write (it can only be a
/// window the resumed run regenerates).
fn window_lines(path: &Path) -> Vec<String> {
    let bytes = std::fs::read(path).expect("read series");
    let text = String::from_utf8_lossy(&bytes);
    let complete = match text.rfind('\n') {
        Some(i) => &text[..=i],
        None => "",
    };
    complete
        .lines()
        .skip(1)
        .filter(|l| !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Extract `snap.time` from a checkpoint file (stored as a JSON string
/// field, `"time":"N"`), without pulling the parser into this test.
fn checkpoint_time(path: &Path) -> u64 {
    let text = std::fs::read_to_string(path).expect("read checkpoint");
    let at = text.find("\"time\"").expect("checkpoint has a time field");
    let digits: String = text[at..]
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().expect("time parses")
}

#[test]
fn sigkilled_fleet_resumes_byte_identically_from_checkpoints() {
    let clean_dir = tmp("clean");
    let killed_dir = tmp("killed");
    let resumed_dir = tmp("resumed");
    for d in [&clean_dir, &killed_dir, &resumed_dir] {
        std::fs::remove_dir_all(d).ok();
    }

    // Uninterrupted reference run.
    let mut cmd = occ();
    fleet_args(&mut cmd, &clean_dir);
    let out = cmd.output().expect("run occ");
    assert!(
        out.status.success(),
        "clean run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The doomed run: spawn it, wait until every shard has committed at
    // least one checkpoint, then SIGKILL the whole process.
    let mut cmd = occ();
    fleet_args(&mut cmd, &killed_dir);
    let mut child = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn occ");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let all_checkpointed = (0..SHARDS).all(|s| ckpt_path(&killed_dir, s).exists());
        if all_checkpointed {
            break;
        }
        if child.try_wait().expect("try_wait").is_some() {
            break; // Finished before we could kill it; stitch still holds.
        }
        assert!(Instant::now() < deadline, "no checkpoints after 60s");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().ok(); // No-op if it already exited.
    child.wait().expect("reap child");

    // Resume from whatever the kill left behind. Checkpoints are
    // written atomically with a CRC trailer, so the resume either
    // starts from a committed window boundary or exits 4 — never from
    // a torn state.
    let mut cmd = occ();
    fleet_args(&mut cmd, &resumed_dir);
    cmd.args(["--from-dir", killed_dir.to_str().unwrap()]);
    let out = cmd.output().expect("run occ");
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Per shard: killed-run windows up to the checkpoint, then the
    // resumed run's windows, must equal the clean run's byte-for-byte.
    for shard in 0..SHARDS {
        let resume_index = (checkpoint_time(&ckpt_path(&killed_dir, shard)) / WIDTH) as usize;
        let killed = window_lines(&series_path(&killed_dir, shard));
        assert!(
            killed.len() >= resume_index,
            "shard {shard}: every window covered by the checkpoint was \
             flushed before it ({} lines, resume index {resume_index})",
            killed.len()
        );
        let mut stitched = killed[..resume_index].to_vec();
        stitched.extend(window_lines(&series_path(&resumed_dir, shard)));
        assert_eq!(
            stitched,
            window_lines(&series_path(&clean_dir, shard)),
            "shard {shard}: stitched series differs from the clean run"
        );
    }

    for d in [&clean_dir, &killed_dir, &resumed_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn overflowing_len_is_a_usage_error() {
    // 20e9 * 1e9 overflows u64; the CLI must refuse it up front (exit
    // 2) instead of wrapping into a tiny run.
    let out = occ()
        .args([
            "soak",
            "--scenario",
            "two-tier",
            "--len",
            "20000000000B",
            "--window",
            "5k",
            "--heartbeat",
            "off",
        ])
        .output()
        .expect("run occ");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("overflow"), "names the overflow: {stderr}");
}
