//! Black-box contract for `occ soak` and the window-series pipeline
//! through the real binary: the series tiles the run and survives a
//! kill/resume byte-identically, sticky sink I/O errors exit 3, an
//! unknown series schema exits 4, and `occ report --series` renders the
//! file it just wrote.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn occ(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_occ"))
        .args(args)
        .output()
        .expect("run occ")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("occ-soak-e2e");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// Run `occ soak` on the two-tier scenario with the given extra flags,
/// asserting success and returning stdout.
fn soak(len: &str, series: &Path, extra: &[&str]) -> String {
    let mut args = vec![
        "soak",
        "--scenario",
        "two-tier",
        "--len",
        len,
        "--window",
        "5k",
        "--k",
        "24",
        "--seed",
        "9",
        "--heartbeat",
        "off",
        "--series",
        series.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let out = occ(&args);
    assert!(
        out.status.success(),
        "soak failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// The window lines (everything after the header) of a series file.
/// Finished files end with a `#crc32:` trailer; that seal is not part
/// of the window payload, so comment lines are dropped here.
fn window_lines(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("read series");
    text.lines()
        .skip(1)
        .filter(|l| !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[test]
fn soak_emits_schema_stamped_windows_that_tile_the_run() {
    let series = tmp("tile.jsonl");
    let stdout = soak("23k", &series, &[]);
    assert!(stdout.contains("windows"), "summary mentions windows");

    let text = std::fs::read_to_string(&series).unwrap();
    let mut lines = text.lines();
    let header = lines.next().expect("header line");
    assert!(header.contains("\"schema\":1"), "stamped: {header}");
    assert!(header.contains("\"kind\":\"occ-series\""));
    assert!(header.contains("\"window\":5000"));
    // 23k requests / 5k per window = 4 full windows + 1 partial, then
    // the checksum trailer sealing the finished file.
    assert!(
        text.lines().last().unwrap().starts_with("#crc32:"),
        "finished series ends with a crc trailer"
    );
    let windows: Vec<&str> = lines.filter(|l| !l.starts_with('#')).collect();
    assert_eq!(windows.len(), 5, "⌈23000/5000⌉ windows");
    assert!(windows.iter().all(|l| l.contains("\"kind\":\"window\"")));
    assert!(windows[4].contains("\"start\":20000"));
    assert!(windows[4].contains("\"end\":23000"));

    // The convex policy attaches a dual point to every window.
    assert!(windows.iter().all(|l| l.contains("\"dual\"")));

    // `occ report --series` renders the file it just wrote.
    let out = occ(&["report", "--series", series.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "report --series failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rendered = String::from_utf8(out.stdout).unwrap();
    assert!(rendered.contains("5 windows of 5000 requests"));
    assert!(rendered.contains("20000..23000"));
}

#[test]
fn killed_soak_resumes_the_series_byte_identically() {
    let full = tmp("full.jsonl");
    let half = tmp("half.jsonl");
    let resumed = tmp("resumed.jsonl");
    let ck = tmp("ck.json");

    soak("20k", &full, &[]);
    // The "killed" run: same seed, stopped at 10k with a checkpoint.
    // The streamed prefix is identical for a given seed, so stopping
    // early stands in for a mid-run kill.
    soak(
        "10k",
        &half,
        &[
            "--checkpoint",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "5k",
        ],
    );
    soak("20k", &resumed, &["--from", ck.to_str().unwrap()]);

    let mut spliced = window_lines(&half);
    spliced.extend(window_lines(&resumed));
    assert_eq!(
        spliced,
        window_lines(&full),
        "interrupted + resumed series must equal the uninterrupted one byte-for-byte"
    );
}

#[test]
fn mid_window_checkpoint_cadence_is_rounded_to_a_boundary() {
    let series = tmp("rounded.jsonl");
    let ck = tmp("rounded-ck.json");
    let out = occ(&[
        "soak",
        "--scenario",
        "two-tier",
        "--len",
        "15k",
        "--window",
        "5k",
        "--k",
        "24",
        "--heartbeat",
        "off",
        "--series",
        series.to_str().unwrap(),
        "--checkpoint",
        ck.to_str().unwrap(),
        "--checkpoint-every",
        "7k",
    ]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rounding --checkpoint-every 7000 up to 10000"),
        "cadence rounding is announced: {stderr}"
    );
}

#[cfg(target_os = "linux")]
#[test]
fn sticky_series_sink_errors_exit_with_io_code() {
    // /dev/full accepts opens and fails every write with ENOSPC; the
    // sink parks the first error and soak must surface it at the end as
    // the i/o class instead of silently dropping the series.
    let out = occ(&[
        "soak",
        "--scenario",
        "two-tier",
        "--len",
        "6k",
        "--window",
        "2k",
        "--k",
        "24",
        "--heartbeat",
        "off",
        "--series",
        "/dev/full",
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("/dev/full"), "names the path: {stderr}");
}

#[test]
fn unknown_series_schema_exits_with_parse_code() {
    let path = tmp("future.jsonl");
    std::fs::write(
        &path,
        "{\"schema\":99,\"kind\":\"occ-series\",\"window\":5}\n",
    )
    .unwrap();
    let out = occ(&["report", "--series", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("schema 99 unsupported"),
        "names the stamp: {stderr}"
    );
}

#[test]
fn soak_streams_binary_traces_but_rejects_text() {
    let bin = tmp("soak-trace.bin");
    let out = occ(&[
        "generate",
        "--scenario",
        "two-tier",
        "--len",
        "8000",
        "--seed",
        "5",
        "--format",
        "binary",
        "--out",
        bin.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let series = tmp("soak-trace.jsonl");
    let out = occ(&[
        "soak",
        "--scenario",
        "two-tier",
        "--trace",
        bin.to_str().unwrap(),
        "--window",
        "2k",
        "--k",
        "24",
        "--heartbeat",
        "off",
        "--series",
        series.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "binary-trace soak failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(window_lines(&series).len(), 4, "8000 / 2000 windows");

    // A text trace is not streamable; soak refuses with the parse class.
    let text = tmp("soak-trace.txt");
    let out = occ(&[
        "generate",
        "--scenario",
        "two-tier",
        "--len",
        "1000",
        "--out",
        text.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = occ(&[
        "soak",
        "--scenario",
        "two-tier",
        "--trace",
        text.to_str().unwrap(),
        "--k",
        "24",
        "--heartbeat",
        "off",
    ]);
    assert_eq!(out.status.code(), Some(4));
}
