//! Black-box contract for the binary trace format through the real
//! binary: `occ generate --format binary` round-trips through every
//! trace-reading command via auto-detection, and truncated or corrupt
//! binary files exit with the parse class (4) — not a panic, not a
//! generic 1 — so operators can script on the distinction.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn occ(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_occ"))
        .args(args)
        .output()
        .expect("run occ")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("occ-binio-e2e");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn generate_binary(path: &Path) {
    let out = occ(&[
        "generate",
        "--scenario",
        "two-tier",
        "--len",
        "2000",
        "--seed",
        "5",
        "--format",
        "binary",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_and_text_traces_replay_identically() {
    let bin_path = tmp("trace.bin");
    let text_path = tmp("trace.txt");
    generate_binary(&bin_path);
    let out = occ(&[
        "generate",
        "--scenario",
        "two-tier",
        "--len",
        "2000",
        "--seed",
        "5",
        "--out",
        text_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Binary is fixed-width: header + owner table + 4 bytes/request,
    // plus the trailing checksum footer (8-byte magic + CRC-32).
    let bin_bytes = std::fs::metadata(&bin_path).unwrap().len();
    assert_eq!(bin_bytes, 8 + 4 + 4 + 64 * 4 + 8 + 2000 * 4 + 8 + 4);

    let run = |path: &Path| {
        let out = occ(&[
            "run",
            "--scenario",
            "two-tier",
            "--policy",
            "lru",
            "--k",
            "24",
            "--trace",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(
        run(&bin_path),
        run(&text_path),
        "same trace, either encoding, same report"
    );
}

#[test]
fn truncated_binary_trace_exits_with_parse_code() {
    let path = tmp("trace-truncated.bin");
    generate_binary(&path);
    let full = std::fs::read(&path).unwrap();
    // Cut mid-header and mid-request-stream; both are parse failures.
    for cut in [10, full.len() - 3] {
        let cut_path = tmp("cut.bin");
        std::fs::write(&cut_path, &full[..cut]).unwrap();
        let out = occ(&[
            "run",
            "--scenario",
            "two-tier",
            "--policy",
            "lru",
            "--k",
            "24",
            "--trace",
            cut_path.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(4),
            "truncation at {cut} must exit 4; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("truncated") || stderr.contains("unexpected EOF"),
            "error names the truncation: {stderr}"
        );
    }
}

#[test]
fn corrupt_binary_trace_exits_with_parse_code() {
    let path = tmp("trace-corrupt.bin");
    generate_binary(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    // Blow up the first owner-table entry (offset 16: after the magic
    // and the two u32 counts) so it falls outside the user range.
    bytes[16] = 0xFF;
    bytes[17] = 0xFF;
    let bad = tmp("bad.bin");
    std::fs::write(&bad, &bytes).unwrap();
    let out = occ(&[
        "run",
        "--scenario",
        "two-tier",
        "--policy",
        "lru",
        "--k",
        "24",
        "--trace",
        bad.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "corrupt header must exit 4; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unknown_generate_format_is_a_usage_error() {
    let out = occ(&[
        "generate",
        "--scenario",
        "two-tier",
        "--format",
        "msgpack",
        "--out",
        tmp("never.bin").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}
