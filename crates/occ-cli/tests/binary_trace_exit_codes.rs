//! Black-box contract for the binary trace format through the real
//! binary: `occ generate --format binary` round-trips through every
//! trace-reading command via auto-detection, and truncated or corrupt
//! binary files exit with the parse class (4) — not a panic, not a
//! generic 1 — so operators can script on the distinction.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn occ(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_occ"))
        .args(args)
        .output()
        .expect("run occ")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("occ-binio-e2e");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn generate_binary(path: &Path) {
    let out = occ(&[
        "generate",
        "--scenario",
        "two-tier",
        "--len",
        "2000",
        "--seed",
        "5",
        "--format",
        "binary",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_and_text_traces_replay_identically() {
    let bin_path = tmp("trace.bin");
    let text_path = tmp("trace.txt");
    generate_binary(&bin_path);
    let out = occ(&[
        "generate",
        "--scenario",
        "two-tier",
        "--len",
        "2000",
        "--seed",
        "5",
        "--out",
        text_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Binary is fixed-width: header + owner table + 4 bytes/request,
    // plus the trailing checksum footer (8-byte magic + CRC-32).
    let bin_bytes = std::fs::metadata(&bin_path).unwrap().len();
    assert_eq!(bin_bytes, 8 + 4 + 4 + 64 * 4 + 8 + 2000 * 4 + 8 + 4);

    let run = |path: &Path| {
        let out = occ(&[
            "run",
            "--scenario",
            "two-tier",
            "--policy",
            "lru",
            "--k",
            "24",
            "--trace",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(
        run(&bin_path),
        run(&text_path),
        "same trace, either encoding, same report"
    );
}

#[test]
fn truncated_binary_trace_exits_with_parse_code() {
    let path = tmp("trace-truncated.bin");
    generate_binary(&path);
    let full = std::fs::read(&path).unwrap();
    // Cut mid-header and mid-request-stream; both are parse failures.
    for cut in [10, full.len() - 3] {
        let cut_path = tmp("cut.bin");
        std::fs::write(&cut_path, &full[..cut]).unwrap();
        let out = occ(&[
            "run",
            "--scenario",
            "two-tier",
            "--policy",
            "lru",
            "--k",
            "24",
            "--trace",
            cut_path.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(4),
            "truncation at {cut} must exit 4; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("truncated") || stderr.contains("unexpected EOF"),
            "error names the truncation: {stderr}"
        );
    }
}

#[test]
fn corrupt_binary_trace_exits_with_parse_code() {
    let path = tmp("trace-corrupt.bin");
    generate_binary(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    // Blow up the first owner-table entry (offset 16: after the magic
    // and the two u32 counts) so it falls outside the user range.
    bytes[16] = 0xFF;
    bytes[17] = 0xFF;
    let bad = tmp("bad.bin");
    std::fs::write(&bad, &bytes).unwrap();
    let out = occ(&[
        "run",
        "--scenario",
        "two-tier",
        "--policy",
        "lru",
        "--k",
        "24",
        "--trace",
        bad.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "corrupt header must exit 4; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn generate_packed(path: &Path) {
    let out = occ(&[
        "generate",
        "--scenario",
        "two-tier",
        "--len",
        "2000",
        "--seed",
        "5",
        "--format",
        "binary-v2",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "generate binary-v2 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn run_report(path: &Path) -> String {
    let out = occ(&[
        "run",
        "--scenario",
        "two-tier",
        "--policy",
        "lru",
        "--k",
        "24",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn packed_and_fixed_width_traces_replay_identically() {
    let v1 = tmp("formats-v1.bin");
    let v2 = tmp("formats-v2.bin");
    generate_binary(&v1);
    generate_packed(&v2);

    // Same seed, either encoding, same report — and the packed encoding
    // is strictly smaller than 4 bytes/request on this 64-page universe.
    assert_eq!(run_report(&v1), run_report(&v2));
    let v1_bytes = std::fs::metadata(&v1).unwrap().len();
    let v2_bytes = std::fs::metadata(&v2).unwrap().len();
    assert!(
        v2_bytes < v1_bytes,
        "occbin02 ({v2_bytes} B) should undercut occbin01 ({v1_bytes} B)"
    );
}

#[test]
fn truncated_packed_trace_exits_with_parse_code() {
    let path = tmp("packed-truncated.bin");
    generate_packed(&path);
    let full = std::fs::read(&path).unwrap();
    // Cut mid-header, mid-footer, and inside the varint request stream
    // (the last cut lands mid-varint or at a chunk tag; both are
    // truncations).
    for cut in [10, full.len() - 3, full.len() - 20] {
        let cut_path = tmp("packed-cut.bin");
        std::fs::write(&cut_path, &full[..cut]).unwrap();
        let out = occ(&[
            "run",
            "--scenario",
            "two-tier",
            "--policy",
            "lru",
            "--k",
            "24",
            "--trace",
            cut_path.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(4),
            "packed truncation at {cut} must exit 4; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn corrupt_packed_trace_exits_with_parse_code() {
    let path = tmp("packed-corrupt.bin");
    generate_packed(&path);
    let full = std::fs::read(&path).unwrap();

    // Flip the last byte (inside the footer CRC) and a payload byte in
    // the request stream; both must surface as parse failures, not as a
    // silently different replay.
    let mut footer_flip = full.clone();
    *footer_flip.last_mut().unwrap() ^= 0xFF;
    let mut payload_flip = full.clone();
    let mid = full.len() - 40; // well inside the encoded requests
    payload_flip[mid] ^= 0x55;

    for (label, bytes) in [("footer", footer_flip), ("payload", payload_flip)] {
        let bad = tmp("packed-bad.bin");
        std::fs::write(&bad, &bytes).unwrap();
        let out = occ(&[
            "run",
            "--scenario",
            "two-tier",
            "--policy",
            "lru",
            "--k",
            "24",
            "--trace",
            bad.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(4),
            "flipped {label} byte must exit 4; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn pack_unpack_round_trip_is_byte_identical() {
    let v1 = tmp("roundtrip-v1.bin");
    let packed = tmp("roundtrip.occbin02");
    let unpacked = tmp("roundtrip-back.bin");
    generate_binary(&v1);

    let out = occ(&[
        "trace",
        "pack",
        "--in",
        v1.to_str().unwrap(),
        "--out",
        packed.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "pack failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = occ(&[
        "trace",
        "unpack",
        "--in",
        packed.to_str().unwrap(),
        "--out",
        unpacked.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "unpack failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // occbin01 is canonical for a given trace, so pack → unpack must
    // reproduce the original file bit for bit.
    assert_eq!(
        std::fs::read(&v1).unwrap(),
        std::fs::read(&unpacked).unwrap(),
        "pack → unpack must reproduce the original occbin01 bytes"
    );
}

#[test]
fn scaled_len_suffixes_generate_identical_traces() {
    let spelled = tmp("len-spelled.bin");
    let suffixed = tmp("len-suffixed.bin");
    for (path, len) in [(&spelled, "2000"), (&suffixed, "2k")] {
        let out = occ(&[
            "generate",
            "--scenario",
            "two-tier",
            "--len",
            len,
            "--seed",
            "5",
            "--format",
            "binary",
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "generate --len {len} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        std::fs::read(&spelled).unwrap(),
        std::fs::read(&suffixed).unwrap(),
        "--len 2k and --len 2000 must be the same trace"
    );
}

#[test]
fn malformed_scaled_len_is_a_usage_error() {
    // Garbage suffix, fractional scale, and u64 overflow are all usage
    // errors (exit 2), reported before any file is touched.
    for len in ["5x", "1.5M", "99999999999999999999B", "20000000000B"] {
        let out = occ(&[
            "generate",
            "--scenario",
            "two-tier",
            "--len",
            len,
            "--out",
            tmp("never-len.bin").to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--len {len} must exit 2; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// A trace served through a FIFO — which cannot be probed twice or
/// mapped — must fall back to buffered reads and produce the identical
/// windowed series as the regular file.
#[cfg(unix)]
#[test]
fn fifo_trace_falls_back_to_buffered_and_replays_identically() {
    let bin = tmp("fifo-src.bin");
    generate_binary(&bin);
    let fifo = tmp("fifo-trace.pipe");
    std::fs::remove_file(&fifo).ok();
    let status = Command::new("mkfifo").arg(&fifo).status().expect("mkfifo");
    assert!(status.success(), "mkfifo failed");

    let soak = |trace: &Path, series: &Path| {
        let out = occ(&[
            "soak",
            "--scenario",
            "two-tier",
            "--window",
            "500",
            "--heartbeat",
            "off",
            "--trace",
            trace.to_str().unwrap(),
            "--series",
            series.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "soak failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The strategy announcement goes to stderr; the report table
        // owns stdout.
        String::from_utf8(out.stderr).unwrap()
    };

    let file_series = tmp("fifo-file.series.jsonl");
    let file_stderr = soak(&bin, &file_series);
    assert!(file_stderr.contains("via the mmap path"), "{file_stderr}");

    let bytes = std::fs::read(&bin).unwrap();
    let writer_path = fifo.clone();
    let writer = std::thread::spawn(move || {
        std::fs::write(&writer_path, &bytes).unwrap();
    });
    let fifo_series = tmp("fifo-pipe.series.jsonl");
    let fifo_stderr = soak(&fifo, &fifo_series);
    writer.join().unwrap();
    std::fs::remove_file(&fifo).ok();
    assert!(
        fifo_stderr.contains("via the buffered path"),
        "{fifo_stderr}"
    );

    assert_eq!(
        std::fs::read_to_string(&file_series).unwrap(),
        std::fs::read_to_string(&fifo_series).unwrap(),
        "FIFO replay must produce the identical window series"
    );
}

#[test]
fn unknown_generate_format_is_a_usage_error() {
    let out = occ(&[
        "generate",
        "--scenario",
        "two-tier",
        "--format",
        "msgpack",
        "--out",
        tmp("never.bin").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}
