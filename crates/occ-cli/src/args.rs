//! Tiny flag parser (`--name value` pairs plus one subcommand), kept
//! in-tree to stay inside the workspace's dependency budget.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, an optional action (the second
/// positional, used by `occ trace pack|unpack|import`), plus
/// `--key value` flags.
#[derive(Debug, Default)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    /// Second positional argument. Only `occ trace` accepts one; the
    /// dispatcher rejects it everywhere else.
    pub action: Option<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse an iterator of raw arguments (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                if out.flags.insert(name.to_string(), value).is_some() {
                    return Err(format!("flag --{name} given twice"));
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else if out.action.is_none() {
                out.action = Some(tok);
            } else {
                return Err(format!("unexpected positional argument '{tok}'"));
            }
        }
        Ok(out)
    }

    /// Parse the process arguments.
    pub fn from_env() -> Result<Args, String> {
        Self::parse(std::env::args().skip(1))
    }

    /// String flag with a default.
    pub fn str_or(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Required string flag.
    pub fn str_required(&self, name: &str) -> Result<String, String> {
        self.flags
            .get(name)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Numeric flag with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("bad value for --{name}: {e}")),
        }
    }

    /// Unsigned flag with a default, accepting `k`/`M`/`B` (or `G`)
    /// magnitude suffixes: `500k` = 500_000, `5M` = 5_000_000,
    /// `1B` = 1_000_000_000. Soak runs are specified in these units.
    pub fn scaled_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => parse_scaled(v).map_err(|e| format!("bad value for --{name}: {e}")),
        }
    }
}

/// Parse `"123"`, `"500k"`, `"5M"`, `"1B"` (case-insensitive suffix,
/// `G` accepted as a synonym for `B`) into a `u64`, rejecting overflow.
pub fn parse_scaled(text: &str) -> Result<u64, String> {
    let text = text.trim();
    let (digits, mult) = match text.char_indices().last() {
        Some((i, c)) if c.is_ascii_alphabetic() => {
            let mult = match c.to_ascii_lowercase() {
                'k' => 1_000u64,
                'm' => 1_000_000,
                'b' | 'g' => 1_000_000_000,
                _ => return Err(format!("unknown magnitude suffix '{c}' (use k, M, or B)")),
            };
            (&text[..i], mult)
        }
        _ => (text, 1),
    };
    if digits.is_empty() {
        return Err("expected digits before the suffix".into());
    }
    // `u64::from_str` tolerates a leading `+`; sizes are bare digits
    // only, so `+5M`, `-5`, and embedded whitespace all fail here.
    if !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("invalid digit string '{digits}' (digits only)"));
    }
    let base: u64 = digits
        .parse()
        .map_err(|e| format!("invalid digit string '{digits}': {e}"))?;
    base.checked_mul(mult)
        .ok_or_else(|| format!("'{text}' overflows a u64"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn command_and_flags() {
        let a = parse(&["run", "--k", "8", "--policy", "lru"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.num_or("k", 0usize).unwrap(), 8);
        assert_eq!(a.str_or("policy", "x"), "lru");
        assert_eq!(a.str_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&["run", "--k"]).is_err());
    }

    #[test]
    fn duplicate_flag_is_error() {
        assert!(parse(&["run", "--k", "1", "--k", "2"]).is_err());
    }

    #[test]
    fn second_positional_is_the_action_and_a_third_is_an_error() {
        let a = parse(&["trace", "pack", "--in", "x"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("trace"));
        assert_eq!(a.action.as_deref(), Some("pack"));
        assert!(parse(&["trace", "pack", "again"]).is_err());
    }

    #[test]
    fn bad_number_reported() {
        let a = parse(&["run", "--k", "many"]).unwrap();
        assert!(a.num_or("k", 0usize).is_err());
    }

    #[test]
    fn required_flag() {
        let a = parse(&["run"]).unwrap();
        assert!(a.str_required("trace").is_err());
    }

    #[test]
    fn scaled_numbers() {
        assert_eq!(parse_scaled("123").unwrap(), 123);
        assert_eq!(parse_scaled("500k").unwrap(), 500_000);
        assert_eq!(parse_scaled("500K").unwrap(), 500_000);
        assert_eq!(parse_scaled("5M").unwrap(), 5_000_000);
        assert_eq!(parse_scaled("1B").unwrap(), 1_000_000_000);
        assert_eq!(parse_scaled("2g").unwrap(), 2_000_000_000);
        assert_eq!(parse_scaled("0").unwrap(), 0);
        assert!(parse_scaled("").is_err());
        assert!(parse_scaled("k").is_err());
        assert!(parse_scaled("5x").is_err());
        assert!(parse_scaled("1.5M").is_err());
        assert!(parse_scaled("99999999999999999999B").is_err());
    }

    #[test]
    fn scaled_boundaries_and_garbage() {
        // Exact u64::MAX is representable; one past it is not.
        assert_eq!(parse_scaled("18446744073709551615").unwrap(), u64::MAX);
        assert!(parse_scaled("18446744073709551616").is_err());
        // Largest value whose k-scaling still fits, and the first that
        // does not — `checked_mul` must catch the latter, not wrap.
        assert_eq!(
            parse_scaled("18446744073709551k").unwrap(),
            18_446_744_073_709_551_000
        );
        assert!(parse_scaled("18446744073709552k").is_err());
        // 20e9 * 1e9 overflows: the motivating `--len 20000000000B` case.
        assert!(parse_scaled("20000000000B").is_err());
        // Signs, inner whitespace, and hex are not sizes.
        assert!(parse_scaled("+5M").is_err());
        assert!(parse_scaled("-5").is_err());
        assert!(parse_scaled("5 M").is_err());
        assert!(parse_scaled("0x10").is_err());

        let a = parse(&["soak", "--len", "10M"]).unwrap();
        assert_eq!(a.scaled_or("len", 0).unwrap(), 10_000_000);
        assert_eq!(a.scaled_or("window", 7).unwrap(), 7);
        let bad = parse(&["soak", "--len", "ten"]).unwrap();
        assert!(bad.scaled_or("len", 0).is_err());
    }
}
