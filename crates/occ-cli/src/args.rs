//! Tiny flag parser (`--name value` pairs plus one subcommand), kept
//! in-tree to stay inside the workspace's dependency budget.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Default)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse an iterator of raw arguments (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                if out.flags.insert(name.to_string(), value).is_some() {
                    return Err(format!("flag --{name} given twice"));
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                return Err(format!("unexpected positional argument '{tok}'"));
            }
        }
        Ok(out)
    }

    /// Parse the process arguments.
    pub fn from_env() -> Result<Args, String> {
        Self::parse(std::env::args().skip(1))
    }

    /// String flag with a default.
    pub fn str_or(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Required string flag.
    pub fn str_required(&self, name: &str) -> Result<String, String> {
        self.flags
            .get(name)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Numeric flag with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("bad value for --{name}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn command_and_flags() {
        let a = parse(&["run", "--k", "8", "--policy", "lru"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.num_or("k", 0usize).unwrap(), 8);
        assert_eq!(a.str_or("policy", "x"), "lru");
        assert_eq!(a.str_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&["run", "--k"]).is_err());
    }

    #[test]
    fn duplicate_flag_is_error() {
        assert!(parse(&["run", "--k", "1", "--k", "2"]).is_err());
    }

    #[test]
    fn extra_positional_is_error() {
        assert!(parse(&["run", "again"]).is_err());
    }

    #[test]
    fn bad_number_reported() {
        let a = parse(&["run", "--k", "many"]).unwrap();
        assert!(a.num_or("k", 0usize).is_err());
    }

    #[test]
    fn required_flag() {
        let a = parse(&["run"]).unwrap();
        assert!(a.str_required("trace").is_err());
    }
}
