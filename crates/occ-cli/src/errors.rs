//! CLI error taxonomy with distinct exit codes.
//!
//! Scripts (and the CI chaos smoke) distinguish *why* `occ` failed:
//!
//! | code | class  | meaning                                            |
//! |------|--------|----------------------------------------------------|
//! | 0    | —      | success                                            |
//! | 1    | other  | internal/unclassified error                        |
//! | 2    | usage  | bad flags, unknown names, malformed invocations    |
//! | 3    | io     | file could not be opened/read/written              |
//! | 4    | parse  | file opened but its content is invalid (trace,     |
//! |      |        | report, snapshot)                                  |
//! | 5    | fault  | a simulation fault surfaced under fail-fast        |
//! | 6    | conformance | a theorem-conformance cell FAILed (the run    |
//! |      |        | itself succeeded; the *bounds* did not hold)       |
//! | 7    | degraded | a supervised fleet run finished, but at least    |
//! |      |        | one shard exhausted its restart budget and was     |
//! |      |        | quarantined — the report is complete but partial   |
//!
//! Library errors stay typed (`TraceIoError`, `SnapshotError`,
//! `SimError`); this module is only the mapping onto process exit codes.

use occ_sim::{SimError, SnapshotError, TraceIoError};
use std::fmt;

/// A classified CLI failure.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown flag value, scenario, policy, format…
    Usage(String),
    /// Underlying file I/O failure.
    Io(String),
    /// A file's *content* could not be understood.
    Parse(String),
    /// A simulation fault surfaced (fail-fast degradation, cost anomaly,
    /// policy contract violation).
    Fault(String),
    /// A conformance grid ran to completion but at least one cell's
    /// bound was violated — distinct from every operational failure so
    /// CI can tell "the theorem broke" from "the tool broke".
    Conformance(String),
    /// A supervised fleet run completed but quarantined at least one
    /// shard: the report was emitted and is self-consistent, yet it is
    /// missing the quarantined shards' tails. Distinct from every hard
    /// failure so orchestration can keep the partial results while
    /// still flagging the run.
    Degraded(String),
    /// Anything else.
    Other(String),
}

impl CliError {
    /// The process exit code for this error class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Parse(_) => 4,
            CliError::Fault(_) => 5,
            CliError::Conformance(_) => 6,
            CliError::Degraded(_) => 7,
        }
    }

    /// Short class label (prefixed to the message so logs are greppable).
    pub fn class(&self) -> &'static str {
        match self {
            CliError::Usage(_) => "usage",
            CliError::Io(_) => "io",
            CliError::Parse(_) => "parse",
            CliError::Fault(_) => "fault",
            CliError::Conformance(_) => "conformance",
            CliError::Degraded(_) => "degraded",
            CliError::Other(_) => "error",
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Io(m)
            | CliError::Parse(m)
            | CliError::Fault(m)
            | CliError::Conformance(m)
            | CliError::Degraded(m)
            | CliError::Other(m) => f.write_str(m),
        }
    }
}

/// Legacy helpers still produce `String` errors; classify them as
/// unspecified rather than losing them.
impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Other(m)
    }
}

impl From<TraceIoError> for CliError {
    fn from(e: TraceIoError) -> Self {
        match e {
            TraceIoError::Io(e) => CliError::Io(e.to_string()),
            TraceIoError::Parse(m) => CliError::Parse(format!("trace parse error: {m}")),
        }
    }
}

impl From<SnapshotError> for CliError {
    fn from(e: SnapshotError) -> Self {
        match &e {
            SnapshotError::UnsupportedVersion { .. }
            | SnapshotError::MissingField(_)
            | SnapshotError::Corrupt(_) => CliError::Parse(e.to_string()),
            SnapshotError::Mismatch(_) | SnapshotError::Unsupported(_) => {
                CliError::Usage(e.to_string())
            }
        }
    }
}

impl From<SimError> for CliError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Snapshot(s) => s.into(),
            SimError::Io(e) => CliError::Io(e.to_string()),
            // Request faults, cost anomalies, and policy violations are
            // simulation faults: under fail-fast they are the signal the
            // chaos smoke asserts on.
            other => CliError::Fault(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let cases = [
            (CliError::Other("x".into()), 1),
            (CliError::Usage("x".into()), 2),
            (CliError::Io("x".into()), 3),
            (CliError::Parse("x".into()), 4),
            (CliError::Fault("x".into()), 5),
            (CliError::Conformance("x".into()), 6),
            (CliError::Degraded("x".into()), 7),
        ];
        for (e, code) in cases {
            assert_eq!(e.exit_code(), code, "{}", e.class());
        }
    }

    #[test]
    fn library_errors_map_to_the_right_class() {
        let e: CliError = SnapshotError::UnsupportedVersion {
            found: 9,
            expected: 1,
        }
        .into();
        assert_eq!(e.exit_code(), 4);
        let e: CliError = SnapshotError::Unsupported("belady".into()).into();
        assert_eq!(e.exit_code(), 2);
        let e: CliError = SimError::Request(occ_sim::RequestFault {
            time: 0,
            kind: occ_sim::FaultKind::PageOutOfRange,
            page: occ_sim::PageId(9),
            user: occ_sim::UserId(0),
        })
        .into();
        assert_eq!(e.exit_code(), 5);
        let e: CliError = TraceIoError::Parse("bad header".into()).into();
        assert_eq!(e.exit_code(), 4);
    }
}
