//! `occ` — command-line front end for the online-convex-caching
//! workspace.
//!
//! ```text
//! occ generate --scenario two-tier --len 60k --seed 7 --out trace.occ
//! occ trace pack   --in trace.occ --out trace.occ2
//! occ trace unpack --in trace.occ2 --out trace.occ
//! occ trace import --in accesses.csv --out trace.occ2 --tenants 2
//! occ run      --trace trace.occ --scenario two-tier --policy convex --k 24
//! occ compare  --scenario sqlvm-like --len 60000 --k 96
//! occ mrc      --scenario two-tier --len 40000 --max-k 48
//! occ observe  --scenario two-tier --policy convex --k 24 --out report.json
//!              --checkpoint ckpt.json --checkpoint-every 10000
//! occ resume   --from ckpt.json --scenario two-tier
//! occ soak     --scenario sqlvm-like --len 100M --window 1M --series s.jsonl
//! occ report   --in report.json
//! occ report   --series s.jsonl
//! occ fleet    --scenario sqlvm-like --shards 8 --len 200000 --policy lru
//! occ concurrent --scenario sqlvm-like --threads 4 --table-shards 8 --len 50000
//! occ concurrent --replay schedule.txt --format json
//! occ conformance --grid smoke --out verdicts.json
//! occ scenarios
//! ```
//!
//! Scenarios name both a tenant mix and a cost profile (see
//! `occ_workloads::presets`); policies are the names used throughout the
//! experiment tables.
//!
//! Failures exit with a class-specific code (see [`errors`]): 2 usage,
//! 3 i/o, 4 unparseable file, 5 simulation fault, 6 conformance FAIL
//! (a checked theorem bound was violated), 7 degraded (a supervised
//! fleet quarantined a shard but still wrote its report), 1 anything
//! else.

mod args;
mod commands;
mod errors;

use args::Args;
use errors::CliError;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    // Only `occ trace` takes a second positional (its action).
    if args.action.is_some() && args.command.as_deref() != Some("trace") {
        eprintln!(
            "error: unexpected positional argument '{}'\n",
            args.action.as_deref().unwrap_or("")
        );
        eprintln!("{}", commands::USAGE);
        std::process::exit(2);
    }
    let result = match args.command.as_deref() {
        Some("generate") => commands::generate(&args),
        Some("trace") => commands::trace(&args),
        Some("run") => commands::run(&args),
        Some("compare") => commands::compare(&args),
        Some("mrc") => commands::mrc(&args),
        Some("observe") => commands::observe(&args),
        Some("resume") => commands::resume(&args),
        Some("soak") => commands::soak(&args),
        Some("report") => commands::report(&args),
        Some("fleet") => commands::fleet(&args),
        Some("concurrent") => commands::concurrent(&args),
        Some("conformance") => commands::conformance(&args),
        Some("scenarios") => commands::scenarios(),
        Some("help") | None => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    if let Err(e) = result {
        eprintln!("error({}): {e}", e.class());
        std::process::exit(e.exit_code());
    }
}
