//! Subcommand implementations for the `occ` binary.

use crate::args::Args;
use occ_analysis::{compare_policies, evaluate_policy, fnum, lru_cost_curve, lru_mrc, Table};
use occ_baselines::{CostGreedy, Fifo, GreedyDual, Lfu, Lru, LruK, Marking, RandomEvict};
use occ_core::{ConvexCaching, CostProfile};
use occ_offline::{Belady, CostAwareBelady};
use occ_probe::{DualTrace, Json, JsonlSink, MetricsRecorder, ObserveReport};
use occ_sim::{read_trace, write_trace, ReplacementPolicy, SimStats, SteppingEngine, Time, Trace};
use occ_workloads::{all_scenarios, Scenario};
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// Top-level usage text.
pub const USAGE: &str = "\
occ — online caching with convex costs

USAGE:
  occ scenarios                                 list built-in scenarios
  occ generate --scenario NAME [--len N] [--seed S] --out FILE
  occ run      --policy NAME --k K (--trace FILE --scenario NAME | --scenario NAME [--len N] [--seed S])
  occ compare  --scenario NAME --k K [--len N] [--seed S]
  occ mrc      --scenario NAME [--len N] [--seed S] [--max-k K]
  occ observe  --scenario NAME [--policy NAME] [--k K] [--len N] [--seed S]
               [--every N] [--out FILE] [--events FILE]
               run with full instrumentation; emit a JSON report (counters,
               latency histogram, and — for the convex policy — the dual
               trajectory). --events streams one JSONL line per engine event.
  occ report   --in FILE [--format table|json]
               validate and render an `occ observe` report

POLICIES:
  convex (the paper's algorithm), lru, fifo, lfu, marking, lru2, random,
  greedy-dual, cost-greedy, belady (offline), belady-cost (offline)
";

/// Print to stdout, exiting quietly if the consumer closed the pipe
/// (e.g. `occ mrc | head`).
fn emit(text: &str) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = writeln!(lock, "{text}") {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error writing output: {e}");
        std::process::exit(1);
    }
}

fn find_scenario(name: &str) -> Result<Scenario, String> {
    all_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| {
            let names: Vec<&str> = all_scenarios().iter().map(|s| s.name).collect();
            format!(
                "unknown scenario '{name}' (available: {})",
                names.join(", ")
            )
        })
}

fn make_policy(
    name: &str,
    costs: &CostProfile,
    trace: &Trace,
) -> Result<Box<dyn ReplacementPolicy>, String> {
    let weights: Vec<f64> = (0..costs.num_users())
        .map(|u| costs.user(occ_sim::UserId(u)).eval(1.0).max(1e-9))
        .collect();
    Ok(match name {
        "convex" => Box::new(ConvexCaching::new(costs.clone())),
        "lru" => Box::new(Lru::new()),
        "fifo" => Box::new(Fifo::new()),
        "lfu" => Box::new(Lfu::new()),
        "marking" => Box::new(Marking::new()),
        "lru2" => Box::new(LruK::new(2)),
        "random" => Box::new(RandomEvict::new(0xC0FFEE)),
        "greedy-dual" => Box::new(GreedyDual::new(weights)),
        "cost-greedy" => Box::new(CostGreedy::new(costs.clone())),
        "belady" => Box::new(Belady::new(trace)),
        "belady-cost" => Box::new(CostAwareBelady::new(trace, costs.clone())),
        other => return Err(format!("unknown policy '{other}'")),
    })
}

/// `occ scenarios`
pub fn scenarios() -> Result<(), String> {
    let mut t = Table::new(vec!["name", "tenants", "pages", "suggested k", "costs"]);
    for s in all_scenarios() {
        let pages: u32 = s.tenants.iter().map(|t| t.pages).sum();
        let costs: Vec<String> = (0..s.costs.num_users())
            .map(|u| s.costs.user(occ_sim::UserId(u)).describe())
            .collect();
        t.row(vec![
            s.name.to_string(),
            s.tenants.len().to_string(),
            pages.to_string(),
            s.suggested_k.to_string(),
            costs.join("; "),
        ]);
    }
    emit(&t.to_markdown());
    Ok(())
}

/// `occ generate`
pub fn generate(args: &Args) -> Result<(), String> {
    let scenario = find_scenario(&args.str_required("scenario")?)?;
    let len: usize = args.num_or("len", 60_000usize)?;
    let seed: u64 = args.num_or("seed", 7u64)?;
    let out = args.str_required("out")?;
    let trace = scenario.trace(len, seed);
    let file = File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
    write_trace(&trace, BufWriter::new(file)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} requests over {} pages / {} users to {out}",
        trace.len(),
        trace.universe().num_pages(),
        trace.universe().num_users()
    );
    Ok(())
}

fn load_or_generate(args: &Args, scenario: &Scenario) -> Result<Trace, String> {
    match args.str_or("trace", "") {
        path if !path.is_empty() => {
            let file = File::open(&path).map_err(|e| format!("open {path}: {e}"))?;
            let trace = read_trace(BufReader::new(file)).map_err(|e| e.to_string())?;
            if trace.universe().num_users() != scenario.costs.num_users() {
                return Err(format!(
                    "trace has {} users but scenario '{}' defines costs for {}",
                    trace.universe().num_users(),
                    scenario.name,
                    scenario.costs.num_users()
                ));
            }
            Ok(trace)
        }
        _ => {
            let len: usize = args.num_or("len", 60_000usize)?;
            let seed: u64 = args.num_or("seed", 7u64)?;
            Ok(scenario.trace(len, seed))
        }
    }
}

/// `occ run`
pub fn run(args: &Args) -> Result<(), String> {
    let scenario = find_scenario(&args.str_required("scenario")?)?;
    let trace = load_or_generate(args, &scenario)?;
    let k: usize = args.num_or("k", scenario.suggested_k)?;
    let policy_name = args.str_or("policy", "convex");
    let mut policy = make_policy(&policy_name, &scenario.costs, &trace)?;
    let report = evaluate_policy(&mut policy, &trace, k, &scenario.costs);

    let mut t = Table::new(vec![
        "policy",
        "k",
        "T",
        "total cost",
        "miss rate",
        "per-tenant misses",
    ]);
    t.row(vec![
        report.name.clone(),
        k.to_string(),
        report.steps.to_string(),
        fnum(report.cost),
        format!("{:.3}", report.miss_rate()),
        format!("{:?}", report.misses),
    ]);
    emit(&t.to_markdown());
    Ok(())
}

/// `occ compare`
pub fn compare(args: &Args) -> Result<(), String> {
    let scenario = find_scenario(&args.str_required("scenario")?)?;
    let trace = load_or_generate(args, &scenario)?;
    let k: usize = args.num_or("k", scenario.suggested_k)?;

    let mut suite = occ_baselines::standard_suite(&scenario.costs);
    let mut reports = compare_policies(&mut suite, &trace, k, &scenario.costs);
    let mut ours = ConvexCaching::new(scenario.costs.clone());
    reports.push(evaluate_policy(&mut ours, &trace, k, &scenario.costs));
    reports.sort_by(|a, b| a.cost.total_cmp(&b.cost));

    let best = reports[0].cost;
    let mut t = Table::new(vec!["policy", "total cost", "vs best", "miss rate"]);
    for r in &reports {
        t.row(vec![
            r.name.clone(),
            fnum(r.cost),
            format!("{:.2}x", r.cost / best),
            format!("{:.3}", r.miss_rate()),
        ]);
    }
    emit(&t.to_markdown());
    Ok(())
}

/// `occ mrc`
pub fn mrc(args: &Args) -> Result<(), String> {
    let scenario = find_scenario(&args.str_required("scenario")?)?;
    let trace = load_or_generate(args, &scenario)?;
    let max_k: usize = args.num_or("max-k", scenario.suggested_k * 2)?;
    let curve = lru_mrc(&trace, max_k);
    let costs = lru_cost_curve(&curve, &scenario.costs);

    let mut t = Table::new(vec!["k", "LRU misses", "miss ratio", "LRU total cost"]);
    let step = (max_k / 16).max(1);
    for k in (1..=max_k).step_by(step) {
        t.row(vec![
            k.to_string(),
            curve.misses[k - 1].to_string(),
            format!("{:.3}", curve.ratio(k)),
            fnum(costs[k - 1]),
        ]);
    }
    emit(&t.to_markdown());
    Ok(())
}

/// Drive a stepping engine over a whole trace with a recorder attached,
/// invoking `sample(t, policy, is_final)` before every step and once
/// after the last one. Returns the final counters, steps served, and
/// the policy's display name.
fn observe_drive<P, R, F>(
    k: usize,
    trace: &Trace,
    policy: P,
    recorder: R,
    mut sample: F,
) -> (SimStats, u64, String, R)
where
    P: ReplacementPolicy,
    R: occ_sim::Recorder,
    F: FnMut(Time, &P, bool),
{
    let mut eng = SteppingEngine::new(k, trace.universe().clone(), policy).with_recorder(recorder);
    for (_, r) in trace.iter() {
        sample(eng.time(), eng.policy(), false);
        eng.step(r);
    }
    sample(eng.time(), eng.policy(), true);
    let stats = eng.stats().clone();
    let steps = eng.time();
    let name = eng.policy().name();
    (stats, steps, name, eng.into_recorder())
}

/// Run one policy with metrics (and optionally a JSONL event stream and
/// a dual-trajectory sampler) attached.
fn observe_policy<P: ReplacementPolicy>(
    k: usize,
    trace: &Trace,
    policy: P,
    rec: &mut MetricsRecorder,
    events_path: &str,
    mut sample: impl FnMut(Time, &P, bool),
) -> Result<(SimStats, u64, String), String> {
    if events_path.is_empty() {
        let (stats, steps, name, _) = observe_drive(k, trace, policy, &mut *rec, sample);
        Ok((stats, steps, name))
    } else {
        let file = File::create(events_path).map_err(|e| format!("create {events_path}: {e}"))?;
        let sink = JsonlSink::new(BufWriter::new(file));
        let (stats, steps, name, (_, sink)) =
            observe_drive(k, trace, policy, (&mut *rec, sink), &mut sample);
        sink.finish()
            .map_err(|e| format!("writing {events_path}: {e}"))?;
        Ok((stats, steps, name))
    }
}

/// `occ observe`
pub fn observe(args: &Args) -> Result<(), String> {
    let scenario = find_scenario(&args.str_required("scenario")?)?;
    let trace = load_or_generate(args, &scenario)?;
    let k: usize = args.num_or("k", scenario.suggested_k)?;
    let policy_name = args.str_or("policy", "convex");
    let every: u64 = args.num_or("every", 1_000u64)?;
    let events_path = args.str_or("events", "");
    let out_path = args.str_or("out", "");

    let mut rec = MetricsRecorder::new();
    let mut dual: Option<DualTrace> = None;
    let (stats, steps, name) = if policy_name == "convex" {
        let alg = ConvexCaching::new(scenario.costs.clone());
        let mut dt = DualTrace::new(every);
        let out = observe_policy(k, &trace, alg, &mut rec, &events_path, |t, p, fin| {
            if fin {
                dt.finalize(t, p);
            } else {
                dt.maybe_sample(t, p);
            }
        })?;
        dual = Some(dt);
        out
    } else {
        let policy = make_policy(&policy_name, &scenario.costs, &trace)?;
        observe_policy(k, &trace, policy, &mut rec, &events_path, |_, _, _| {})?
    };

    let requests = stats.total_hits() + stats.total_misses();
    let misses = stats.total_misses();
    let report = ObserveReport {
        policy: name,
        capacity: k as u64,
        requests,
        hits: stats.total_hits(),
        misses,
        evictions: stats.total_evictions(),
        miss_rate: if requests == 0 {
            0.0
        } else {
            misses as f64 / requests as f64
        },
        total_cost: Some(scenario.costs.total_cost(&stats.eviction_vector())),
        metrics: rec.to_json_value(),
        dual: dual.as_ref().map(DualTrace::to_json_value),
    };
    debug_assert_eq!(steps, requests);
    let text = report.to_json();
    if out_path.is_empty() {
        emit(&text);
    } else {
        std::fs::write(&out_path, text + "\n").map_err(|e| format!("write {out_path}: {e}"))?;
        eprintln!("wrote report to {out_path}");
    }
    Ok(())
}

/// `occ report`
pub fn report(args: &Args) -> Result<(), String> {
    let path = args.str_required("in")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let parsed = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    ObserveReport::validate(&parsed)?;
    let r = ObserveReport::from_json_value(&parsed)?;
    match args.str_or("format", "table").as_str() {
        "table" => emit(&r.to_table()),
        "json" => emit(&r.to_json()),
        other => return Err(format!("unknown format '{other}' (table, json)")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn scenarios_lists_without_error() {
        scenarios().unwrap();
    }

    #[test]
    fn unknown_scenario_is_friendly() {
        let err = find_scenario("nope").map(|_| ()).unwrap_err();
        assert!(err.contains("available"));
    }

    #[test]
    fn run_compare_and_mrc_on_generated_trace() {
        run(&args(&[
            "run",
            "--scenario",
            "two-tier",
            "--len",
            "500",
            "--k",
            "8",
        ]))
        .unwrap();
        compare(&args(&[
            "compare",
            "--scenario",
            "two-tier",
            "--len",
            "500",
            "--k",
            "8",
        ]))
        .unwrap();
        mrc(&args(&[
            "mrc",
            "--scenario",
            "two-tier",
            "--len",
            "500",
            "--max-k",
            "8",
        ]))
        .unwrap();
    }

    #[test]
    fn every_policy_name_constructs() {
        let s = find_scenario("two-tier").unwrap();
        let trace = s.trace(50, 1);
        for name in [
            "convex",
            "lru",
            "fifo",
            "lfu",
            "marking",
            "lru2",
            "random",
            "greedy-dual",
            "cost-greedy",
            "belady",
            "belady-cost",
        ] {
            make_policy(name, &s.costs, &trace).unwrap();
        }
        assert!(make_policy("nope", &s.costs, &trace).is_err());
    }

    #[test]
    fn observe_writes_valid_report_and_report_renders_it() {
        let dir = std::env::temp_dir().join("occ-cli-observe-test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("report.json");
        let events_path = dir.join("events.jsonl");
        observe(&args(&[
            "observe",
            "--scenario",
            "two-tier",
            "--len",
            "800",
            "--k",
            "8",
            "--every",
            "200",
            "--out",
            report_path.to_str().unwrap(),
            "--events",
            events_path.to_str().unwrap(),
        ]))
        .unwrap();

        let text = std::fs::read_to_string(&report_path).unwrap();
        let parsed = Json::parse(&text).unwrap();
        ObserveReport::validate(&parsed).unwrap();
        let r = ObserveReport::from_json_value(&parsed).unwrap();
        assert_eq!(r.requests, 800);
        assert!(r.dual.is_some(), "convex policy must emit a dual trace");
        // The dual trajectory's final primal cost equals the report's
        // stats-derived total cost exactly (the acceptance criterion).
        let samples = r
            .dual
            .as_ref()
            .unwrap()
            .get("samples")
            .and_then(Json::as_array)
            .unwrap();
        let last_cost = samples
            .last()
            .unwrap()
            .get("primal_cost")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(Some(last_cost), r.total_cost);

        // Every event line parses; the count matches the request count
        // (no flush in observe runs).
        let events = std::fs::read_to_string(&events_path).unwrap();
        assert_eq!(events.lines().count() as u64, r.requests);
        for line in events.lines().take(50) {
            Json::parse(line).unwrap();
        }

        report(&args(&["report", "--in", report_path.to_str().unwrap()])).unwrap();
        report(&args(&[
            "report",
            "--in",
            report_path.to_str().unwrap(),
            "--format",
            "json",
        ]))
        .unwrap();
        std::fs::remove_file(report_path).ok();
        std::fs::remove_file(events_path).ok();
    }

    #[test]
    fn observe_works_for_baseline_policies() {
        observe(&args(&[
            "observe",
            "--scenario",
            "two-tier",
            "--policy",
            "lru",
            "--len",
            "300",
            "--k",
            "8",
        ]))
        .unwrap();
    }

    #[test]
    fn report_rejects_garbage() {
        let dir = std::env::temp_dir().join("occ-cli-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"schema\": 1}").unwrap();
        let err = report(&args(&["report", "--in", path.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("required key"), "got: {err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_then_run_round_trip() {
        let dir = std::env::temp_dir().join("occ-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.occ");
        let path_s = path.to_str().unwrap();
        generate(&args(&[
            "generate",
            "--scenario",
            "two-tier",
            "--len",
            "300",
            "--out",
            path_s,
        ]))
        .unwrap();
        run(&args(&[
            "run",
            "--scenario",
            "two-tier",
            "--trace",
            path_s,
            "--policy",
            "lru",
            "--k",
            "8",
        ]))
        .unwrap();
        // A trace whose user count mismatches the scenario is rejected.
        let err = run(&args(&[
            "run",
            "--scenario",
            "sqlvm-like",
            "--trace",
            path_s,
            "--k",
            "8",
        ]))
        .unwrap_err();
        assert!(err.contains("users"));
        std::fs::remove_file(path).ok();
    }
}
