//! Subcommand implementations for the `occ` binary.

use crate::args::{parse_scaled, Args};
use crate::errors::CliError;
use occ_analysis::{compare_policies, evaluate_policy, fnum, lru_cost_curve, lru_mrc, Table};
use occ_baselines::{CostGreedy, Fifo, GreedyDual, Lfu, Lru, LruK, Marking, RandomEvict};
use occ_core::{ConvexCaching, CostProfile};
use occ_fleet::{
    run_fleet, run_shared_fleet, run_supervised_fleet, BackoffPolicy, DirPersist, FleetConfig,
    NoPersist, ShardKill, ShardPersist, SharedConfig, SharedError, StoreFault, SupervisorConfig,
};
use occ_offline::{Belady, CostAwareBelady};
use occ_probe::{
    require_trailer, snapshot_from_json, snapshot_to_json, write_atomic, write_atomic_with_trailer,
    CrcWriter, DualPoint, DualTrace, Json, JsonlSink, MetricsRecorder, ObserveReport, SeriesFile,
    SeriesSink, WindowDelta, WindowedRecorder,
};
use occ_sim::concurrent::{replay_schedule, CommitSchedule, ReplayError, ReplayOutcome};
use occ_sim::{
    read_trace_auto, write_trace, write_trace_binary, write_trace_binary_v2, Binary2TraceWriter,
    BinarySource, BinaryTraceWriter, EngineSnapshot, FaultCounters, FaultHandler, FaultPolicy,
    PageId, ReplacementPolicy, Request, RequestSource, SimStats, SteppingEngine, Time, Trace,
    TraceIoError, Universe, UserId, BINARY2_TRACE_MAGIC, BINARY_TRACE_MAGIC,
};
use occ_workloads::{
    all_scenarios, ChaosSource, CsvAdapter, CsvFlavor, FaultPlan, Scenario, TenantMixSource,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::time::Instant;

/// Top-level usage text.
pub const USAGE: &str = "\
occ — online caching with convex costs

USAGE:
  occ scenarios                                 list built-in scenarios
  occ generate --scenario NAME [--len N] [--seed S]
               [--format text|binary|binary-v2] --out FILE
               write a trace file; binary is the fixed-width
               little-endian form (magic \"occbin01\", 4 bytes/request)
               read without line parsing, binary-v2 the delta+varint
               compressed form (magic \"occbin02\", typically well under
               half the occbin01 size for skewed workloads). --len
               accepts k/M/B suffixes (500k, 10M). Every trace-reading
               command auto-detects the format.
  occ trace pack   --in FILE --out FILE [--limit N]
               transcode a trace (occbin01/occbin02/text) to occbin02,
               streaming — never materializes the trace. --limit N
               (k/M/B suffixes) keeps only the first N requests.
  occ trace unpack --in FILE --out FILE [--limit N]
               transcode a trace to fixed-width occbin01 (the mmap-able
               zero-copy form).
  occ trace import --in FILE.csv --out FILE [--format binary|binary-v2]
               [--csv-flavor auto|msr|twitter] [--tenants N] [--dict FILE]
               convert a real-trace CSV (MSR-Cambridge block I/O or
               Twitter-cluster key-access shapes, auto-sniffed) into a
               binary trace. String keys are interned to dense page ids
               in first-seen order and the recorded dictionary is
               written to --dict (default OUT.dict) so ids stay mappable
               back to keys. --tenants N hashes tenant keys into N
               users (default: dense first-seen tenant ids).
  occ run      --policy NAME --k K (--trace FILE --scenario NAME | --scenario NAME [--len N] [--seed S])
  occ compare  --scenario NAME --k K [--len N] [--seed S]
  occ mrc      --scenario NAME [--len N] [--seed S] [--max-k K]
  occ observe  --scenario NAME [--policy NAME] [--k K] [--len N] [--seed S]
               [--every N] [--out FILE] [--events FILE]
               [--checkpoint FILE] [--checkpoint-every N]
               [--chaos-page-rate P] [--chaos-owner-rate P]
               [--chaos-truncate N] [--chaos-seed S] [--degrade POLICY]
               run with full instrumentation; emit a JSON report (counters,
               latency histogram, fault counters, and — for the convex
               policy — the dual trajectory). --events streams one JSONL
               line per engine event. --checkpoint writes a resumable
               snapshot every N requests (default 10000). The --chaos-*
               flags inject seeded record corruption; --degrade picks the
               reaction: fail-fast (default), skip, quarantine.
  occ resume   --from FILE --scenario NAME [--policy NAME] [--len N] [--seed S]
               [same --chaos-*/--degrade/--checkpoint/--out flags as observe]
               continue a checkpointed observe run over the same trace;
               the continuation is byte-identical to an uninterrupted run.
  occ soak     --scenario NAME [--len N] [--seed S] [--policy NAME] [--k K]
               [--window W] [--series FILE] [--timing on|off]
               [--checkpoint FILE] [--checkpoint-every N] [--from FILE]
               [--heartbeat on|off] [--trace FILE]
               stream N requests (default 10M) in O(1) memory, closing a
               telemetry window every W requests (default 1M) and
               appending each closed window to the JSONL series file.
               --len/--window/--checkpoint-every accept k/M/B suffixes
               (500k, 5M, 1B). --trace streams a trace file instead of
               the scenario mixer: occbin01 (served zero-copy from a
               memory mapping where the platform allows, buffered
               otherwise), occbin02, or a real-trace CSV (msr/twitter
               shapes, tenants hashed into the scenario's user count;
               [--csv-flavor auto|msr|twitter]); --from resumes a killed
               soak from its checkpoint, continuing the series
               byte-identically (checkpoints land on window boundaries;
               pass the same --scenario and --seed — the checkpoint
               carries engine state, not the workload stream).
               --timing on adds wall-clock latency histograms per window
               (not byte-reproducible). A stderr heartbeat reports req/s,
               ETA and RSS about once a second. Checkpoints and finished
               series files are written atomically and sealed with a
               #crc32 trailer; a killed run leaves the series at FILE.tmp
               and resuming from a corrupt checkpoint exits 4.
  occ report   --in FILE [--format table|json]
               validate and render an `occ observe` report
  occ report   --series FILE [--format table|json]
               render an `occ soak` window series as an aligned table
               with per-window Δ miss-ratio markers
  occ fleet    --scenario NAME [--shards F] [--len N] [--seed S]
               [--policy NAME] [--k K] [--batch B] [--window W]
               [--trace FILE [--csv-flavor F]]
               [--format table|json] [--out FILE]
               [--supervise on|off|auto] [--max-restarts N] [--backoff-ms MS]
               [--checkpoint-dir DIR] [--from-dir DIR] [--series-out FILE]
               [--chaos-shard-kill S@T,..] [--chaos-store-fail S@N,..]
               run F independent cache shards of the scenario in
               parallel (one worker thread each, seeds derived per
               shard), streaming requests in O(1) memory, and merge the
               per-shard telemetry into one fleet report. --trace FILE
               replays a trace file (occbin01/occbin02/CSV, as in soak)
               on every shard instead of the mixer — occbin01 shards
               serve batches zero-copy from a shared memory mapping
               (unsupervised runs only). --window W
               additionally collects tumbling-window series per shard
               and merges them in shard order. Offline policies
               (belady*) are rejected: the fleet never materializes a
               trace.
               Supervision (implied by any of the flags below; requires
               --window, ignores --batch): shards run under panic
               isolation, checkpoint on window boundaries, and are
               restarted from their last checkpoint with seeded
               exponential backoff (--backoff-ms 0 = no sleeping); a
               shard that fails more than --max-restarts times is
               quarantined and the run exits 7 with a degraded report.
               --checkpoint-dir persists per-shard checkpoints + series
               (shard-NNNN.ckpt.json / .series.jsonl); --from-dir
               resumes a killed fleet from such a directory (corrupt
               checkpoints exit 4). --series-out writes the merged
               window series (atomic rename + CRC trailer) — recovered
               runs produce it byte-identical to uninterrupted ones.
               --chaos-shard-kill panics shard S at request T;
               --chaos-store-fail fails shard S's Nth checkpoint save
               (both seeded, deterministic, counts accept k/M/B).
  occ concurrent --scenario NAME [--threads M] [--table-shards S] [--len N]
               [--seed S] [--k K] [--policy lru|fifo|greedy-dual]
               [--trace FILE [--csv-flavor F]]
               [--verify on|off] [--format table|json] [--out FILE]
               [--schedule-out FILE]
               [--chaos-page-rate P] [--chaos-owner-rate P]
               [--chaos-truncate N] [--chaos-seed S] [--degrade POLICY]
               run M worker threads against ONE shared k-sized cache
               (lock-striped over S page-table segments), each thread
               streaming N scenario requests with a per-thread seed
               (or, with --trace, each thread replaying the same trace
               file — occbin01/occbin02/CSV; chaos flags need the
               synthetic stream).
               Every commit is recorded as (seq, thread, shard, page,
               user, outcome); --verify on (the default) replays the
               schedule single-threaded through the stock engine and
               fails (exit 5) unless per-user hit/miss/eviction vectors,
               fault counters and the quarantine set are identical.
               Only policies with pure callbacks may share the cache
               (lru, fifo, greedy-dual). --schedule-out writes the
               commit schedule (CRC-sealed, self-describing header) for
               offline replay. The --chaos-*/--degrade flags match
               observe; chaos without --degrade fails fast.
  occ concurrent --replay FILE [--format table|json] [--out FILE]
               re-execute a --schedule-out file single-threaded and emit
               a report whose users/faults/quarantined sections are
               directly comparable to the recording run's (the CI
               concurrency smoke byte-diffs them). Corrupt or
               non-contiguous schedules exit 4; divergence exits 5.
  occ conformance [--grid smoke|full] [--seed S] [--weaken W]
               [--shrink on|off] [--out FILE] [--format table|json]
               machine-check the paper's bounds (Theorems 1.1/1.3/1.4,
               Claim 2.3) on a parallel grid of instances and render the
               PASS/FAIL/VACUOUS verdict table. --out writes the
               schema-stamped JSON verdicts (byte-identical for a given
               grid, seed, and weaken factor). --weaken scales every
               bound (values < 1 tighten them — the deliberate-failure
               fixture); a FAIL verdict exits with code 6 after shrinking
               a minimal counterexample.

EXIT CODES:
  0 ok · 1 error · 2 usage · 3 i/o · 4 unparseable file · 5 simulation fault
  6 conformance FAIL (a checked bound was violated)
  7 degraded (a supervised fleet quarantined a shard; report still written)

POLICIES:
  convex (the paper's algorithm), lru, fifo, lfu, marking, lru2, random,
  greedy-dual, cost-greedy, belady (offline), belady-cost (offline)
";

/// Classify a flag-parsing error as a usage error (exit 2).
fn uarg<T>(r: Result<T, String>) -> Result<T, CliError> {
    r.map_err(CliError::Usage)
}

/// Print to stdout, exiting quietly if the consumer closed the pipe
/// (e.g. `occ mrc | head`).
fn emit(text: &str) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = writeln!(lock, "{text}") {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error writing output: {e}");
        std::process::exit(1);
    }
}

fn find_scenario(name: &str) -> Result<Scenario, CliError> {
    all_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| {
            let names: Vec<&str> = all_scenarios().iter().map(|s| s.name).collect();
            CliError::Usage(format!(
                "unknown scenario '{name}' (available: {})",
                names.join(", ")
            ))
        })
}

/// The online policies — everything a streaming run (no materialized
/// trace) can use. `None` for offline or unknown names.
fn make_online_policy(name: &str, costs: &CostProfile) -> Option<Box<dyn ReplacementPolicy>> {
    let weights: Vec<f64> = (0..costs.num_users())
        .map(|u| costs.user(occ_sim::UserId(u)).eval(1.0).max(1e-9))
        .collect();
    Some(match name {
        "convex" => Box::new(ConvexCaching::new(costs.clone())),
        "lru" => Box::new(Lru::new()),
        "fifo" => Box::new(Fifo::new()),
        "lfu" => Box::new(Lfu::new()),
        "marking" => Box::new(Marking::new()),
        "lru2" => Box::new(LruK::new(2)),
        "random" => Box::new(RandomEvict::new(0xC0FFEE)),
        "greedy-dual" => Box::new(GreedyDual::new(weights)),
        "cost-greedy" => Box::new(CostGreedy::new(costs.clone())),
        _ => return None,
    })
}

fn make_policy(
    name: &str,
    costs: &CostProfile,
    trace: &Trace,
) -> Result<Box<dyn ReplacementPolicy>, CliError> {
    if let Some(policy) = make_online_policy(name, costs) {
        return Ok(policy);
    }
    Ok(match name {
        "belady" => Box::new(Belady::new(trace)),
        "belady-cost" => Box::new(CostAwareBelady::new(trace, costs.clone())),
        other => return Err(CliError::Usage(format!("unknown policy '{other}'"))),
    })
}

/// `occ scenarios`
pub fn scenarios() -> Result<(), CliError> {
    let mut t = Table::new(vec!["name", "tenants", "pages", "suggested k", "costs"]);
    for s in all_scenarios() {
        let pages: u32 = s.tenants.iter().map(|t| t.pages).sum();
        let costs: Vec<String> = (0..s.costs.num_users())
            .map(|u| s.costs.user(occ_sim::UserId(u)).describe())
            .collect();
        t.row(vec![
            s.name.to_string(),
            s.tenants.len().to_string(),
            pages.to_string(),
            s.suggested_k.to_string(),
            costs.join("; "),
        ]);
    }
    emit(&t.to_markdown());
    Ok(())
}

/// Convert a scaled `u64` count into a `usize`, failing as a usage
/// error on 32-bit targets rather than truncating.
fn scaled_usize(args: &Args, name: &str, default: u64) -> Result<usize, CliError> {
    let n = uarg(args.scaled_or(name, default))?;
    usize::try_from(n).map_err(|_| {
        CliError::Usage(format!(
            "--{name} {n} does not fit in this platform's usize"
        ))
    })
}

/// `occ generate`
pub fn generate(args: &Args) -> Result<(), CliError> {
    let scenario = find_scenario(&uarg(args.str_required("scenario"))?)?;
    let len = scaled_usize(args, "len", 60_000)?;
    let seed: u64 = uarg(args.num_or("seed", 7u64))?;
    let out = uarg(args.str_required("out"))?;
    let format = args.str_or("format", "text");
    let trace = scenario.trace(len, seed);
    // Render in memory, then land on disk atomically: a crash or full
    // disk mid-generate leaves the old trace (or nothing), never a
    // half-written one. Binary traces additionally carry the occbin01
    // (or occbin02) checksum footer the writer appends.
    let mut buf = Vec::new();
    match format.as_str() {
        "text" => write_trace(&trace, &mut buf)?,
        "binary" => write_trace_binary(&trace, &mut buf)?,
        "binary-v2" => write_trace_binary_v2(&trace, &mut buf)?,
        other => {
            return Err(CliError::Usage(format!(
                "unknown trace format '{other}' (expected text, binary, or binary-v2)"
            )))
        }
    }
    write_atomic(Path::new(&out), &buf).map_err(|e| CliError::Io(format!("write {out}: {e}")))?;
    println!(
        "wrote {} requests over {} pages / {} users to {out} ({format})",
        trace.len(),
        trace.universe().num_pages(),
        trace.universe().num_users()
    );
    Ok(())
}

fn load_or_generate(args: &Args, scenario: &Scenario) -> Result<Trace, CliError> {
    match args.str_or("trace", "") {
        path if !path.is_empty() => {
            let file = File::open(&path).map_err(|e| CliError::Io(format!("open {path}: {e}")))?;
            let trace = read_trace_auto(BufReader::new(file))?;
            if trace.universe().num_users() != scenario.costs.num_users() {
                return Err(CliError::Usage(format!(
                    "trace has {} users but scenario '{}' defines costs for {}",
                    trace.universe().num_users(),
                    scenario.name,
                    scenario.costs.num_users()
                )));
            }
            Ok(trace)
        }
        _ => {
            let len = scaled_usize(args, "len", 60_000)?;
            let seed: u64 = uarg(args.num_or("seed", 7u64))?;
            Ok(scenario.trace(len, seed))
        }
    }
}

/// Attach the file path to a trace-reader error, keeping its exit class.
fn feed_err(path: &str, e: TraceIoError) -> CliError {
    match e {
        TraceIoError::Io(io) => CliError::Io(format!("{path}: {io}")),
        TraceIoError::Parse(m) => CliError::Parse(format!("{path}: {m}")),
    }
}

/// `--csv-flavor auto|msr|twitter` (`None` = sniff).
fn csv_flavor_from_args(args: &Args) -> Result<Option<CsvFlavor>, CliError> {
    match args.str_or("csv-flavor", "auto").as_str() {
        "auto" => Ok(None),
        "msr" => Ok(Some(CsvFlavor::Msr)),
        "twitter" => Ok(Some(CsvFlavor::Twitter)),
        other => Err(CliError::Usage(format!(
            "unknown --csv-flavor '{other}' (auto, msr, twitter)"
        ))),
    }
}

/// A streaming `--trace FILE` feed: one of the binary formats
/// ([`BinarySource`] picks mmap / buffered / packed by sniffing the
/// magic) or a real-trace CSV adapted on the fly. Holds O(1) heap
/// regardless of trace length (the mmap path's pages are file-backed).
enum FileFeed {
    Bin(Box<BinarySource>),
    Csv(Box<CsvAdapter>),
}

impl FileFeed {
    /// Sniff the leading bytes and open the right reader: binary magic
    /// goes to [`BinarySource`], anything else to the CSV adapter
    /// (whose own sniffer rejects files that are neither).
    fn open(
        path: &str,
        flavor: Option<CsvFlavor>,
        tenants: Option<u32>,
    ) -> Result<FileFeed, CliError> {
        use std::io::Read as _;
        // A pipe can only be read once: the probing open below would
        // consume the magic bytes, so hand non-regular files straight
        // to `BinarySource`, which sniffs through the one handle it
        // opens. CSV needs two passes over a seekable file and cannot
        // ride a pipe anyway.
        let regular = std::fs::metadata(path)
            .map(|m| m.is_file())
            .unwrap_or(false);
        if !regular {
            let src = BinarySource::open(Path::new(path)).map_err(|e| feed_err(path, e))?;
            return Ok(FileFeed::Bin(Box::new(src)));
        }
        let mut probe = [0u8; 8];
        let mut got = 0;
        {
            let mut f = File::open(path).map_err(|e| CliError::Io(format!("open {path}: {e}")))?;
            while got < probe.len() {
                match f.read(&mut probe[got..]) {
                    Ok(0) => break,
                    Ok(n) => got += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(CliError::Io(format!("read {path}: {e}"))),
                }
            }
        }
        let head = &probe[..got];
        if head == BINARY_TRACE_MAGIC || head == BINARY2_TRACE_MAGIC {
            let src = BinarySource::open(Path::new(path)).map_err(|e| feed_err(path, e))?;
            Ok(FileFeed::Bin(Box::new(src)))
        } else {
            let csv = CsvAdapter::open(Path::new(path), flavor, tenants)
                .map_err(|e| feed_err(path, e))?;
            Ok(FileFeed::Csv(Box::new(csv)))
        }
    }

    fn total_requests(&self) -> u64 {
        match self {
            FileFeed::Bin(b) => b.total_requests(),
            FileFeed::Csv(c) => c.total_requests(),
        }
    }

    /// How the feed serves requests, for logs and reports.
    fn strategy(&self) -> &'static str {
        match self {
            FileFeed::Bin(b) => b.strategy(),
            FileFeed::Csv(c) => match c.flavor() {
                CsvFlavor::Msr => "csv-msr",
                CsvFlavor::Twitter => "csv-twitter",
            },
        }
    }

    fn error(&self) -> Option<&TraceIoError> {
        match self {
            FileFeed::Bin(b) => b.error(),
            FileFeed::Csv(c) => c.error(),
        }
    }
}

impl RequestSource for FileFeed {
    fn universe(&self) -> &Universe {
        match self {
            FileFeed::Bin(b) => RequestSource::universe(b.as_ref()),
            FileFeed::Csv(c) => RequestSource::universe(c.as_ref()),
        }
    }

    fn next_request(&mut self, ctx: &occ_sim::EngineCtx) -> Option<Request> {
        match self {
            FileFeed::Bin(b) => b.next_request(ctx),
            FileFeed::Csv(c) => c.next_request(ctx),
        }
    }

    fn next_run(&mut self, max: usize) -> Option<&[Request]> {
        match self {
            FileFeed::Bin(b) => b.next_run(max),
            FileFeed::Csv(_) => None,
        }
    }

    fn next_page_run(&mut self, max: usize) -> Option<&[PageId]> {
        match self {
            FileFeed::Bin(b) => b.next_page_run(max),
            FileFeed::Csv(_) => None,
        }
    }
}

/// Open a `--trace` feed for a scenario-driven command, enforcing that
/// the trace's tenant structure matches the scenario's cost profile.
/// CSV tenants are hashed into the scenario's user count, so only the
/// binary formats can disagree.
fn open_trace_feed(args: &Args, path: &str, scenario: &Scenario) -> Result<FileFeed, CliError> {
    let flavor = csv_flavor_from_args(args)?;
    let feed = FileFeed::open(path, flavor, Some(scenario.costs.num_users()))?;
    let users = RequestSource::universe(&feed).num_users();
    if users != scenario.costs.num_users() {
        return Err(CliError::Usage(format!(
            "trace has {users} users but scenario '{}' defines costs for {}",
            scenario.name,
            scenario.costs.num_users()
        )));
    }
    Ok(feed)
}

/// `occ trace` — pack / unpack / import.
pub fn trace(args: &Args) -> Result<(), CliError> {
    match args.action.as_deref() {
        Some("pack") => trace_transcode(args, true),
        Some("unpack") => trace_transcode(args, false),
        Some("import") => trace_import(args),
        Some(other) => Err(CliError::Usage(format!(
            "unknown trace action '{other}' (pack, unpack, import)"
        ))),
        None => Err(CliError::Usage(
            "occ trace needs an action: pack, unpack, or import".into(),
        )),
    }
}

/// Streaming transcode between the binary trace formats (`pack` writes
/// occbin02, `unpack` writes occbin01). Reads chunk runs, never
/// materializes the trace; text-format inputs are the one exception
/// (they are parsed whole, which is what the text reader does anyway).
fn trace_transcode(args: &Args, pack: bool) -> Result<(), CliError> {
    let in_path = uarg(args.str_required("in"))?;
    let out_path = uarg(args.str_required("out"))?;
    let limit = uarg(args.scaled_or("limit", 0))?;

    let mut feed = match FileFeed::open(&in_path, None, None) {
        Ok(f) => f,
        Err(CliError::Parse(_)) => {
            // Not binary and not CSV — maybe the v1 text format. Parse
            // it whole and re-serve it as runs.
            let file =
                File::open(&in_path).map_err(|e| CliError::Io(format!("open {in_path}: {e}")))?;
            let trace = read_trace_auto(BufReader::new(file)).map_err(|e| feed_err(&in_path, e))?;
            let mut buf = Vec::new();
            if pack {
                write_trace_binary_v2(&trace, &mut buf)?;
            } else {
                write_trace_binary(&trace, &mut buf)?;
            }
            return finish_transcode(&in_path, &out_path, buf, trace.len() as u64, pack);
        }
        Err(e) => return Err(e),
    };
    let total = feed.total_requests();
    let keep = if limit == 0 { total } else { limit.min(total) };
    let universe = RequestSource::universe(&feed).clone();

    // Render to memory, then land atomically (same discipline as
    // `occ generate`); the read side still streams in chunk-sized runs.
    let mut served = 0u64;
    let buf = if pack {
        let mut w = Binary2TraceWriter::new(universe, keep, Vec::new())?;
        copy_requests(&mut feed, keep, &mut served, |req| w.push(req))?;
        w.finish()?
    } else {
        let mut w = BinaryTraceWriter::new(universe, std::io::Cursor::new(Vec::new()))?;
        copy_requests(&mut feed, keep, &mut served, |req| w.push(req))?;
        w.finish()?.into_inner()
    };
    if let Some(e) = feed.error() {
        return Err(feed_err(&in_path, TraceIoError::Parse(e.to_string())));
    }
    if served != keep {
        return Err(CliError::Parse(format!(
            "{in_path}: trace ended after {served} of {keep} requests"
        )));
    }
    finish_transcode(&in_path, &out_path, buf, keep, pack)
}

/// Pull up to `keep` requests out of `feed` in runs and hand each to
/// `push`. Chunked by the feed's own serving granularity.
fn copy_requests(
    feed: &mut FileFeed,
    keep: u64,
    served: &mut u64,
    mut push: impl FnMut(Request) -> Result<(), TraceIoError>,
) -> Result<(), CliError> {
    const RUN: usize = 64 * 1024;
    while *served < keep {
        let max = (keep - *served).min(RUN as u64) as usize;
        // The universe lookup for page runs matches what the buffered
        // reader would have done to build each Request.
        if let Some(run) = feed.next_page_run(max) {
            if run.is_empty() {
                break;
            }
            let run: Vec<PageId> = run.to_vec();
            let universe = RequestSource::universe(feed);
            let reqs: Vec<Request> = run
                .iter()
                .map(|&page| Request {
                    page,
                    user: universe.owner(page),
                })
                .collect();
            for req in reqs {
                push(req)?;
            }
            *served += run.len() as u64;
            continue;
        }
        if let Some(run) = feed.next_run(max) {
            if run.is_empty() {
                break;
            }
            let reqs: Vec<Request> = run.to_vec();
            for req in &reqs {
                push(*req)?;
            }
            *served += reqs.len() as u64;
            continue;
        }
        // CSV feeds serve per-request.
        let Some(req) = (match feed {
            FileFeed::Csv(c) => c.pull(),
            FileFeed::Bin(_) => None,
        }) else {
            break;
        };
        push(req)?;
        *served += 1;
    }
    Ok(())
}

/// Write the transcoded bytes atomically and report the size change.
fn finish_transcode(
    in_path: &str,
    out_path: &str,
    buf: Vec<u8>,
    requests: u64,
    pack: bool,
) -> Result<(), CliError> {
    let in_size = std::fs::metadata(in_path).map(|m| m.len()).unwrap_or(0);
    let out_size = buf.len() as u64;
    write_atomic(Path::new(out_path), &buf)
        .map_err(|e| CliError::Io(format!("write {out_path}: {e}")))?;
    let verb = if pack { "packed" } else { "unpacked" };
    let ratio = if in_size > 0 {
        format!("{:.2}x", out_size as f64 / in_size as f64)
    } else {
        "-".into()
    };
    println!(
        "{verb} {requests} requests: {in_path} ({in_size} B) -> {out_path} ({out_size} B, {ratio})"
    );
    Ok(())
}

/// `occ trace import` — CSV → binary trace + recorded key dictionary.
fn trace_import(args: &Args) -> Result<(), CliError> {
    let in_path = uarg(args.str_required("in"))?;
    let out_path = uarg(args.str_required("out"))?;
    let dict_path = args.str_or("dict", &format!("{out_path}.dict"));
    let flavor = csv_flavor_from_args(args)?;
    let tenants: u32 = uarg(args.num_or("tenants", 0u32))?;
    let tenants = if tenants == 0 { None } else { Some(tenants) };
    let format = args.str_or("format", "binary-v2");

    let mut csv = CsvAdapter::open(Path::new(&in_path), flavor, tenants)
        .map_err(|e| feed_err(&in_path, e))?;
    let universe = RequestSource::universe(&csv).clone();
    let total = csv.total_requests();

    let buf = match format.as_str() {
        "binary-v2" => {
            let mut w = Binary2TraceWriter::new(universe.clone(), total, Vec::new())?;
            while let Some(req) = csv.pull() {
                w.push(req)?;
            }
            w.finish()?
        }
        "binary" => {
            let mut w = BinaryTraceWriter::new(universe.clone(), std::io::Cursor::new(Vec::new()))?;
            while let Some(req) = csv.pull() {
                w.push(req)?;
            }
            w.finish()?.into_inner()
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown trace format '{other}' (expected binary or binary-v2)"
            )))
        }
    };
    if let Some(e) = csv.error() {
        return Err(feed_err(&in_path, TraceIoError::Parse(e.to_string())));
    }
    let mut dict_buf = Vec::new();
    csv.key_dict().write_to(&mut dict_buf)?;
    write_atomic(Path::new(&out_path), &buf)
        .map_err(|e| CliError::Io(format!("write {out_path}: {e}")))?;
    write_atomic(Path::new(&dict_path), &dict_buf)
        .map_err(|e| CliError::Io(format!("write {dict_path}: {e}")))?;
    println!(
        "imported {total} requests over {} pages / {} users ({}) to {out_path} ({format}, {} B); \
         dictionary: {dict_path} ({} keys)",
        universe.num_pages(),
        universe.num_users(),
        match csv.flavor() {
            CsvFlavor::Msr => "msr",
            CsvFlavor::Twitter => "twitter",
        },
        buf.len(),
        csv.key_dict().len(),
    );
    Ok(())
}

/// `occ run`
pub fn run(args: &Args) -> Result<(), CliError> {
    let scenario = find_scenario(&uarg(args.str_required("scenario"))?)?;
    let trace = load_or_generate(args, &scenario)?;
    let k: usize = uarg(args.num_or("k", scenario.suggested_k))?;
    let policy_name = args.str_or("policy", "convex");
    let mut policy = make_policy(&policy_name, &scenario.costs, &trace)?;
    let report = evaluate_policy(&mut policy, &trace, k, &scenario.costs);

    let mut t = Table::new(vec![
        "policy",
        "k",
        "T",
        "total cost",
        "miss rate",
        "per-tenant misses",
    ]);
    t.row(vec![
        report.name.clone(),
        k.to_string(),
        report.steps.to_string(),
        fnum(report.cost),
        format!("{:.3}", report.miss_rate()),
        format!("{:?}", report.misses),
    ]);
    emit(&t.to_markdown());
    Ok(())
}

/// `occ compare`
pub fn compare(args: &Args) -> Result<(), CliError> {
    let scenario = find_scenario(&uarg(args.str_required("scenario"))?)?;
    let trace = load_or_generate(args, &scenario)?;
    let k: usize = uarg(args.num_or("k", scenario.suggested_k))?;

    let mut suite = occ_baselines::standard_suite(&scenario.costs);
    let mut reports = compare_policies(&mut suite, &trace, k, &scenario.costs);
    let mut ours = ConvexCaching::new(scenario.costs.clone());
    reports.push(evaluate_policy(&mut ours, &trace, k, &scenario.costs));
    reports.sort_by(|a, b| a.cost.total_cmp(&b.cost));

    let best = reports[0].cost;
    let mut t = Table::new(vec!["policy", "total cost", "vs best", "miss rate"]);
    for r in &reports {
        t.row(vec![
            r.name.clone(),
            fnum(r.cost),
            format!("{:.2}x", r.cost / best),
            format!("{:.3}", r.miss_rate()),
        ]);
    }
    emit(&t.to_markdown());
    Ok(())
}

/// `occ mrc`
pub fn mrc(args: &Args) -> Result<(), CliError> {
    let scenario = find_scenario(&uarg(args.str_required("scenario"))?)?;
    let trace = load_or_generate(args, &scenario)?;
    let max_k: usize = uarg(args.num_or("max-k", scenario.suggested_k * 2))?;
    let curve = lru_mrc(&trace, max_k);
    let costs = lru_cost_curve(&curve, &scenario.costs);

    let mut t = Table::new(vec!["k", "LRU misses", "miss ratio", "LRU total cost"]);
    let step = (max_k / 16).max(1);
    for k in (1..=max_k).step_by(step) {
        t.row(vec![
            k.to_string(),
            curve.misses[k - 1].to_string(),
            format!("{:.3}", curve.ratio(k)),
            fnum(costs[k - 1]),
        ]);
    }
    emit(&t.to_markdown());
    Ok(())
}

/// `occ fleet`
pub fn fleet(args: &Args) -> Result<(), CliError> {
    let scenario = find_scenario(&uarg(args.str_required("scenario"))?)?;
    let shards: usize = uarg(args.num_or("shards", 4usize))?;
    if shards == 0 {
        return Err(CliError::Usage("a fleet needs at least one shard".into()));
    }
    let len: u64 = uarg(args.scaled_or("len", 60_000))?;
    let seed: u64 = uarg(args.num_or("seed", 7u64))?;
    let k: usize = uarg(args.num_or("k", scenario.suggested_k))?;
    let batch: usize = uarg(args.num_or("batch", occ_sim::DEFAULT_BATCH_SIZE))?;
    if batch == 0 {
        return Err(CliError::Usage("--batch must be positive".into()));
    }
    let policy_name = args.str_or("policy", "lru");
    if policy_name == "belady" || policy_name == "belady-cost" {
        return Err(CliError::Usage(format!(
            "policy '{policy_name}' is offline; the fleet streams its workload \
             and never materializes a trace"
        )));
    }
    if make_online_policy(&policy_name, &scenario.costs).is_none() {
        return Err(CliError::Usage(format!("unknown policy '{policy_name}'")));
    }

    let window = uarg(args.scaled_or("window", 0))?;

    // Supervision flags. Any of them implies the supervised engine
    // (per-shard panic isolation + checkpoint/restart); `--supervise on`
    // forces it for a plain run too, e.g. to get the supervisor section
    // in the report.
    let kills: Vec<ShardKill> = parse_chaos_plan(
        &args.str_or("chaos-shard-kill", ""),
        shards,
        "chaos-shard-kill",
    )?
    .into_iter()
    .map(|(shard, at)| ShardKill { shard, at })
    .collect();
    let store_faults: Vec<StoreFault> = parse_chaos_plan(
        &args.str_or("chaos-store-fail", ""),
        shards,
        "chaos-store-fail",
    )?
    .into_iter()
    .map(|(shard, nth)| StoreFault { shard, nth })
    .collect();
    if let Some(f) = store_faults.iter().find(|f| f.nth == 0) {
        return Err(CliError::Usage(format!(
            "--chaos-store-fail counts checkpoint saves from 1; '{}@0' never fires",
            f.shard
        )));
    }
    let max_restarts: u32 = uarg(args.num_or("max-restarts", 3u32))?;
    let backoff_ms: u64 = uarg(args.num_or("backoff-ms", 0u64))?;
    let ckpt_dir = args.str_or("checkpoint-dir", "");
    let from_dir = args.str_or("from-dir", "");
    let series_out = args.str_or("series-out", "");
    let wants_supervision = !kills.is_empty()
        || !store_faults.is_empty()
        || !ckpt_dir.is_empty()
        || !from_dir.is_empty()
        || !series_out.is_empty();
    let supervised = match args.str_or("supervise", "auto").as_str() {
        "on" => true,
        "off" if wants_supervision => {
            return Err(CliError::Usage(
                "--supervise off conflicts with the chaos/checkpoint/series flags, \
                 which all need the supervisor"
                    .into(),
            ))
        }
        "off" => false,
        "auto" => wants_supervision,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --supervise mode '{other}' (on, off, auto)"
            )))
        }
    };
    if supervised && window == 0 {
        return Err(CliError::Usage(
            "supervised fleet runs checkpoint on window boundaries; pass --window W".into(),
        ));
    }
    let trace_path = args.str_or("trace", "");
    if supervised && !trace_path.is_empty() {
        return Err(CliError::Usage(
            "--trace drives unsupervised fleets only; drop the supervision flags \
             or replay the trace through `occ soak --trace`"
                .into(),
        ));
    }

    let costs = &scenario.costs;
    let shard_seed = |i: usize| seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let report = if supervised {
        let mut scfg = SupervisorConfig::new(k, window);
        scfg.max_restarts = max_restarts;
        scfg.backoff = if backoff_ms == 0 {
            BackoffPolicy::none()
        } else {
            BackoffPolicy::exponential(backoff_ms, seed)
        };
        scfg.kills = kills;
        scfg.store_faults = store_faults;

        // Per-shard resume snapshots from an earlier (killed) run's
        // checkpoint directory. A missing file means that shard never
        // reached its first checkpoint: it starts fresh. A corrupt one
        // is exit 4, before any thread spawns.
        let mut resume_index = vec![0u64; shards];
        if !from_dir.is_empty() {
            let probe = scenario.stream(len, seed);
            let mut resume = Vec::with_capacity(shards);
            for (i, slot) in resume_index.iter_mut().enumerate() {
                let path = DirPersist::ckpt_path(Path::new(&from_dir), i);
                if !path.exists() {
                    resume.push(None);
                    continue;
                }
                let snap = read_checkpoint(&path)?;
                if probe.universe().owners() != snap.owners.as_slice() {
                    return Err(CliError::Usage(format!(
                        "shard {i} checkpoint universe does not match scenario '{}'; \
                         resume with the original --scenario/--len/--seed",
                        scenario.name
                    )));
                }
                if snap.capacity != k {
                    return Err(CliError::Usage(format!(
                        "--k {k} disagrees with shard {i}'s checkpoint capacity {}",
                        snap.capacity
                    )));
                }
                if !snap.time.is_multiple_of(window) {
                    return Err(CliError::Usage(format!(
                        "shard {i} checkpoint is at t={} which is mid-window for \
                         --window {window}; resume with the original window width",
                        snap.time
                    )));
                }
                *slot = snap.time / window;
                resume.push(Some(snap));
            }
            scfg.resume = resume;
        }

        let meta = [
            ("scenario", Json::Str(scenario.name.to_string())),
            ("policy", Json::Str(policy_name.clone())),
            ("k", Json::from_u64(k as u64)),
            ("seed", Json::from_u64(seed)),
            ("len", Json::from_u64(len)),
        ];
        // Open every shard's persist files up front so filesystem
        // problems are classified errors here, not worker panics.
        let mut persists: Vec<Option<Box<dyn ShardPersist>>> = Vec::with_capacity(shards);
        for (i, &idx) in resume_index.iter().enumerate() {
            persists.push(Some(if ckpt_dir.is_empty() {
                Box::new(NoPersist)
            } else {
                Box::new(
                    DirPersist::open(Path::new(&ckpt_dir), i, window, idx, &meta).map_err(|e| {
                        CliError::Io(format!("open checkpoint dir {ckpt_dir} for shard {i}: {e}"))
                    })?,
                )
            }));
        }
        let persists = std::sync::Mutex::new(persists);
        let report = run_supervised_fleet(
            shards,
            &scfg,
            |i| scenario.stream(len, shard_seed(i)),
            |_| make_online_policy(&policy_name, costs).expect("validated above"),
            |i| {
                persists.lock().expect("persist handoff")[i]
                    .take()
                    .expect("one persist per shard")
            },
        );

        if !series_out.is_empty() {
            let series = report
                .merged_series
                .as_ref()
                .expect("supervised runs always carry a window series");
            let mut buf = Vec::new();
            {
                let mut s = SeriesSink::new(&mut buf);
                s.write_header(window, &meta);
                for w in &series.windows {
                    s.write_window(w);
                }
                s.finish()
                    .map_err(|e| CliError::Io(format!("render series: {e}")))?;
            }
            let text = String::from_utf8(buf).expect("JSONL is UTF-8");
            write_atomic_with_trailer(Path::new(&series_out), &text)
                .map_err(|e| CliError::Io(format!("write {series_out}: {e}")))?;
        }
        report
    } else {
        let mut cfg = FleetConfig::new(k);
        cfg.batch_size = batch;
        if window > 0 {
            cfg.window = Some(window);
        }
        if trace_path.is_empty() {
            // Each shard is its own server: same scenario, decorrelated
            // seed.
            let sources: Vec<_> = (0..shards)
                .map(|i| scenario.stream(len, shard_seed(i)))
                .collect();
            run_fleet(sources, &cfg, |_| {
                make_online_policy(&policy_name, costs).expect("validated above")
            })
        } else {
            // Every shard replays the same trace file through its own
            // feed; occbin01 shards each map the file (the kernel
            // shares the cached pages) and serve zero-copy runs.
            let sources = (0..shards)
                .map(|_| open_trace_feed(args, &trace_path, &scenario))
                .collect::<Result<Vec<_>, _>>()?;
            if let Some(f) = sources.first() {
                eprintln!(
                    "fleet: replaying {trace_path} ({} requests) on every shard \
                     via the {} path",
                    f.total_requests(),
                    f.strategy()
                );
            }
            run_fleet(sources, &cfg, |_| {
                make_online_policy(&policy_name, costs).expect("validated above")
            })
        }
    };

    let json = report.to_json_value();
    if let Some(out) = Some(args.str_or("out", "")).filter(|p| !p.is_empty()) {
        write_atomic(Path::new(&out), (json.to_json() + "\n").as_bytes())
            .map_err(|e| CliError::Io(format!("write {out}: {e}")))?;
    }
    match args.str_or("format", "table").as_str() {
        "json" => emit(&json.to_json()),
        "table" => {
            let mut head = vec!["shard", "requests", "hits", "misses", "req/s"];
            if report.supervisor.is_some() {
                head.extend(["state", "restarts"]);
            }
            let mut t = Table::new(head);
            for s in &report.shards {
                let mut row = vec![
                    s.shard.to_string(),
                    s.served.to_string(),
                    s.stats.total_hits().to_string(),
                    s.stats.total_misses().to_string(),
                    fnum(s.requests_per_sec()),
                ];
                if let Some(sup) = &report.supervisor {
                    let st = &sup.shards[s.shard];
                    row.push(st.state.as_str().to_string());
                    row.push(st.restarts.to_string());
                }
                t.row(row);
            }
            emit(&t.to_markdown());
            emit(&format!(
                "fleet: {} shards x {len} requests ({policy_name}, k={k}, batch={batch}) — \
                 {} requests in {:.1} ms, aggregate {} req/s",
                shards,
                report.total_requests,
                report.wall.as_secs_f64() * 1e3,
                fnum(report.aggregate_requests_per_sec()),
            ));
            if let Some(series) = &report.merged_series {
                let total = series.total();
                emit(&format!(
                    "windows: {} of width {} merged across shards · overall miss ratio {:.3}",
                    series.windows.len(),
                    series.width,
                    total.miss_ratio()
                ));
            }
            if let Some(sup) = &report.supervisor {
                emit(&format!(
                    "supervisor: {} restarts absorbed, {} of {shards} shards quarantined",
                    sup.total_restarts(),
                    sup.quarantined().len()
                ));
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown format '{other}' (expected table or json)"
            )))
        }
    }
    if let Some(sup) = &report.supervisor {
        if sup.is_degraded() {
            // The report (and any --out/--series-out files) has already
            // been emitted: the run is usable but incomplete.
            return Err(CliError::Degraded(format!(
                "{} of {shards} shards quarantined after exhausting --max-restarts \
                 {max_restarts}; see the report's degraded section",
                sup.quarantined().len()
            )));
        }
    }
    Ok(())
}

/// The policies whose callbacks are *pure* in the shared-cache sense:
/// they read only `ctx.universe` (never `ctx.cache`, `ctx.stats`, or the
/// clock), so S per-shard instances behave identically to the replay's
/// sharded mirror. Everything else is rejected for `occ concurrent`.
fn make_shared_policy(
    name: &str,
    costs: &CostProfile,
) -> Option<Box<dyn ReplacementPolicy + Send>> {
    let weights: Vec<f64> = (0..costs.num_users())
        .map(|u| costs.user(UserId(u)).eval(1.0).max(1e-9))
        .collect();
    Some(match name {
        "lru" => Box::new(Lru::new()),
        "fifo" => Box::new(Fifo::new()),
        "greedy-dual" => Box::new(GreedyDual::new(weights)),
        _ => return None,
    })
}

/// First line of a `--schedule-out` file. The header carries everything
/// `--replay` needs to rebuild the engine, so a schedule file is
/// self-describing.
const SCHEDULE_MAGIC: &str = "# occ-concurrent-schedule v1";

/// Run parameters recovered from a schedule file header.
struct ScheduleMeta {
    scenario: String,
    k: usize,
    table_shards: usize,
    policy: String,
    degrade: FaultPolicy,
}

fn schedule_header(
    scenario: &str,
    k: usize,
    table_shards: usize,
    threads: usize,
    policy: &str,
    degrade: FaultPolicy,
) -> String {
    format!(
        "{SCHEDULE_MAGIC} scenario={scenario} k={k} table-shards={table_shards} \
         threads={threads} policy={policy} degrade={}",
        degrade.name()
    )
}

fn parse_schedule_header(line: &str) -> Result<ScheduleMeta, String> {
    let rest = line
        .strip_prefix(SCHEDULE_MAGIC)
        .ok_or_else(|| format!("schedule header must start with '{SCHEDULE_MAGIC}'"))?;
    let mut scenario = None;
    let mut k = None;
    let mut table_shards = None;
    let mut policy = None;
    let mut degrade = None;
    for token in rest.split_ascii_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("bad header token '{token}' (want key=value)"))?;
        match key {
            "scenario" => scenario = Some(value.to_string()),
            "k" => k = value.parse::<usize>().ok(),
            "table-shards" => table_shards = value.parse::<usize>().ok(),
            "threads" => {} // provenance only; the replay is single-threaded
            "policy" => policy = Some(value.to_string()),
            "degrade" => {
                degrade = Some(FaultPolicy::parse(value).ok_or_else(|| {
                    format!("unknown degrade policy '{value}' in schedule header")
                })?)
            }
            other => return Err(format!("unknown header key '{other}'")),
        }
    }
    Ok(ScheduleMeta {
        scenario: scenario.ok_or("header is missing scenario=")?,
        k: k.ok_or("header is missing or has a bad k=")?,
        table_shards: table_shards.ok_or("header is missing or has a bad table-shards=")?,
        policy: policy.ok_or("header is missing policy=")?,
        degrade: degrade.ok_or("header is missing degrade=")?,
    })
}

/// Per-user hit/miss/eviction vectors in the exact shape
/// `SharedReport::to_json_value` uses, so run and replay reports can be
/// diffed section-for-section.
fn users_json(stats: &SimStats) -> Json {
    Json::Arr(
        stats
            .per_user()
            .iter()
            .map(|u| {
                Json::Obj(vec![
                    ("hits".into(), Json::from_u64(u.hits)),
                    ("misses".into(), Json::from_u64(u.misses)),
                    ("evictions".into(), Json::from_u64(u.evictions)),
                ])
            })
            .collect(),
    )
}

fn faults_json(c: &FaultCounters) -> Json {
    Json::Obj(vec![
        (
            "page_out_of_range".into(),
            Json::from_u64(c.page_out_of_range),
        ),
        ("owner_mismatch".into(), Json::from_u64(c.owner_mismatch)),
        (
            "quarantined_drops".into(),
            Json::from_u64(c.quarantined_drops),
        ),
        (
            "quarantined_users".into(),
            Json::from_u64(c.quarantined_users),
        ),
    ])
}

/// `occ concurrent`
pub fn concurrent(args: &Args) -> Result<(), CliError> {
    let replay_path = args.str_or("replay", "");
    if !replay_path.is_empty() {
        return concurrent_replay(args, &replay_path);
    }

    let scenario = find_scenario(&uarg(args.str_required("scenario"))?)?;
    let threads: usize = uarg(args.num_or("threads", 4usize))?;
    if threads == 0 {
        return Err(CliError::Usage(
            "a concurrent run needs at least one worker thread".into(),
        ));
    }
    let table_shards: usize = uarg(args.num_or("table-shards", 8usize))?;
    if table_shards == 0 {
        return Err(CliError::Usage(
            "--table-shards must be positive (S=1 degenerates to one big lock, \
             which is allowed)"
                .into(),
        ));
    }
    let len: u64 = uarg(args.scaled_or("len", 20_000))?;
    let seed: u64 = uarg(args.num_or("seed", 7u64))?;
    let k: usize = uarg(args.num_or("k", scenario.suggested_k))?;
    if k == 0 {
        return Err(CliError::Usage("--k must be positive".into()));
    }
    let policy_name = args.str_or("policy", "lru");
    if make_shared_policy(&policy_name, &scenario.costs).is_none() {
        return Err(CliError::Usage(format!(
            "policy '{policy_name}' cannot share a cache across threads: shard \
             instances must have pure callbacks (available: lru, fifo, greedy-dual)"
        )));
    }
    let verify = match args.str_or("verify", "on").as_str() {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --verify mode '{other}' (on, off)"
            )))
        }
    };

    let page_rate: f64 = uarg(args.num_or("chaos-page-rate", 0.0f64))?;
    let owner_rate: f64 = uarg(args.num_or("chaos-owner-rate", 0.0f64))?;
    let truncate: u64 = uarg(args.scaled_or("chaos-truncate", 0))?;
    let chaos_seed: u64 = uarg(args.num_or("chaos-seed", 0xC4A05u64))?;
    for (name, rate) in [
        ("chaos-page-rate", page_rate),
        ("chaos-owner-rate", owner_rate),
    ] {
        if !(0.0..=1.0).contains(&rate) {
            return Err(CliError::Usage(format!(
                "--{name} must be in [0, 1], got {rate}"
            )));
        }
    }
    let chaos_active = page_rate > 0.0 || owner_rate > 0.0 || truncate > 0;
    let degrade = degrade_from_args(args, chaos_active)?.unwrap_or(FaultPolicy::SkipAndCount);

    let mut cfg = SharedConfig::new(k);
    cfg.table_shards = table_shards;
    cfg.degrade = degrade;
    cfg.verify = verify;

    let costs = &scenario.costs;
    // Same derivation as the plain fleet: decorrelated, reproducible.
    let thread_seed = |t: usize| seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let trace_path = args.str_or("trace", "");
    if chaos_active && !trace_path.is_empty() {
        return Err(CliError::Usage(
            "the --chaos-* flags corrupt the synthetic stream and do not combine \
             with --trace"
                .into(),
        ));
    }
    let universe = scenario.stream(1, 0).universe().clone();
    let result = if !trace_path.is_empty() {
        // Every worker thread replays the same trace file through its
        // own feed (occbin01 threads share the kernel's cached pages).
        let mut sources = (0..threads)
            .map(|_| open_trace_feed(args, &trace_path, &scenario))
            .collect::<Result<Vec<_>, _>>()?;
        let universe = RequestSource::universe(&sources[0]).clone();
        eprintln!(
            "concurrent: replaying {trace_path} ({} requests) on every thread \
             via the {} path",
            sources[0].total_requests(),
            sources[0].strategy()
        );
        run_shared_fleet(universe, &cfg, &mut sources, |_| {
            make_shared_policy(&policy_name, costs).expect("validated above")
        })
    } else if chaos_active {
        let mut sources: Vec<_> = (0..threads)
            .map(|t| {
                let mut plan = FaultPlan::seeded(chaos_seed ^ thread_seed(t))
                    .with_page_rate(page_rate)
                    .with_owner_rate(owner_rate);
                if truncate > 0 {
                    plan = plan.with_truncate_at(truncate as usize);
                }
                ChaosSource::new(scenario.stream(len, thread_seed(t)), plan)
            })
            .collect();
        run_shared_fleet(universe, &cfg, &mut sources, |_| {
            make_shared_policy(&policy_name, costs).expect("validated above")
        })
    } else {
        let mut sources: Vec<_> = (0..threads)
            .map(|t| scenario.stream(len, thread_seed(t)))
            .collect();
        run_shared_fleet(universe, &cfg, &mut sources, |_| {
            make_shared_policy(&policy_name, costs).expect("validated above")
        })
    };
    let report = result.map_err(|e| match e {
        SharedError::Sim(e) => CliError::from(e),
        SharedError::Replay(e) => CliError::Fault(format!("deterministic replay gate: {e}")),
    })?;

    let sched_out = args.str_or("schedule-out", "");
    if !sched_out.is_empty() {
        let mut body = schedule_header(
            scenario.name,
            k,
            table_shards,
            threads,
            &policy_name,
            degrade,
        );
        body.push('\n');
        for e in report.outcome.schedule.entries() {
            body.push_str(&e.to_line());
            body.push('\n');
        }
        write_atomic_with_trailer(Path::new(&sched_out), &body)
            .map_err(|e| CliError::Io(format!("write {sched_out}: {e}")))?;
        eprintln!(
            "wrote commit schedule ({} entries) to {sched_out}",
            report.outcome.schedule.len()
        );
    }

    let json = report.to_json_value();
    let out_path = args.str_or("out", "");
    if !out_path.is_empty() {
        write_atomic(Path::new(&out_path), (json.to_json() + "\n").as_bytes())
            .map_err(|e| CliError::Io(format!("write {out_path}: {e}")))?;
    }
    match args.str_or("format", "table").as_str() {
        "json" => emit(&json.to_json()),
        "table" => {
            let mut t = Table::new(vec!["thread", "hits", "misses", "evictions", "dropped"]);
            for (i, (stats, counters)) in report.outcome.per_thread.iter().enumerate() {
                t.row(vec![
                    i.to_string(),
                    stats.total_hits().to_string(),
                    stats.total_misses().to_string(),
                    stats.total_evictions().to_string(),
                    counters.total_records().to_string(),
                ]);
            }
            emit(&t.to_markdown());
            emit(&format!(
                "concurrent: {threads} threads x {len} requests on one k={k} cache \
                 ({} segments, {policy_name}, degrade={}) — {} commits in {:.1} ms, {} req/s",
                table_shards,
                degrade.name(),
                report.outcome.schedule.len(),
                report.wall.as_secs_f64() * 1e3,
                fnum(report.requests_per_sec()),
            ));
            let c = &report.outcome.counters;
            if !c.is_clean() {
                emit(&format!(
                    "faults: {} bad pages, {} wrong owners, {} quarantine drops; \
                     {} users quarantined",
                    c.page_out_of_range, c.owner_mismatch, c.quarantined_drops, c.quarantined_users,
                ));
            }
            emit(match &report.replay {
                Some(_) => {
                    "replay: verified identical (single-thread replay of the \
                            commit schedule reproduced every per-user vector)"
                }
                None => "replay: skipped (--verify off); the schedule was still recorded",
            });
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown format '{other}' (expected table or json)"
            )))
        }
    }
    Ok(())
}

/// `occ concurrent --replay FILE`
fn concurrent_replay(args: &Args, path: &str) -> Result<(), CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("read {path}: {e}")))?;
    let body = require_trailer(&text).map_err(|m| CliError::Parse(format!("{path}: {m}")))?;
    let mut lines = body.lines();
    let header = lines
        .next()
        .ok_or_else(|| CliError::Parse(format!("{path}: empty schedule file")))?;
    let meta =
        parse_schedule_header(header).map_err(|m| CliError::Parse(format!("{path}: {m}")))?;
    let scenario = find_scenario(&meta.scenario)?;
    if make_shared_policy(&meta.policy, &scenario.costs).is_none() {
        return Err(CliError::Parse(format!(
            "{path}: schedule header names non-shareable policy '{}'",
            meta.policy
        )));
    }
    let schedule =
        CommitSchedule::from_lines(lines.filter(|l| !l.trim().is_empty() && !l.starts_with('#')))
            .map_err(|e| CliError::Parse(format!("{path}: {e}")))?;

    let universe = scenario.stream(1, 0).universe().clone();
    let policies: Vec<Box<dyn ReplacementPolicy + Send>> = (0..meta.table_shards)
        .map(|_| make_shared_policy(&meta.policy, &scenario.costs).expect("validated above"))
        .collect();
    let started = Instant::now();
    let outcome: ReplayOutcome =
        replay_schedule(meta.k, universe, policies, meta.degrade, &schedule).map_err(
            |e| match e {
                ReplayError::Schedule(m) => {
                    CliError::Parse(format!("{path}: bad commit schedule: {m}"))
                }
                other => CliError::Fault(other.to_string()),
            },
        )?;
    let wall = started.elapsed();

    let quarantined = outcome
        .quarantined
        .iter()
        .map(|u| Json::from_u64(u.0 as u64))
        .collect();
    let json = Json::Obj(vec![
        ("schema".into(), Json::from_u64(1)),
        ("kind".into(), Json::Str("concurrent-replay".into())),
        ("scenario".into(), Json::Str(meta.scenario.clone())),
        ("policy".into(), Json::Str(meta.policy.clone())),
        ("capacity".into(), Json::from_u64(meta.k as u64)),
        (
            "table_shards".into(),
            Json::from_u64(meta.table_shards as u64),
        ),
        ("degrade".into(), Json::Str(meta.degrade.name().into())),
        ("commits".into(), Json::from_u64(schedule.len() as u64)),
        ("users".into(), users_json(&outcome.stats)),
        ("faults".into(), faults_json(&outcome.counters)),
        ("quarantined".into(), Json::Arr(quarantined)),
        ("wall_ms".into(), Json::Num(wall.as_secs_f64() * 1e3)),
    ]);
    let out_path = args.str_or("out", "");
    if !out_path.is_empty() {
        write_atomic(Path::new(&out_path), (json.to_json() + "\n").as_bytes())
            .map_err(|e| CliError::Io(format!("write {out_path}: {e}")))?;
    }
    match args.str_or("format", "table").as_str() {
        "json" => emit(&json.to_json()),
        "table" => {
            emit(&format!(
                "replayed {} commits of '{}' ({}, k={}, {} segments): \
                 {} hits, {} misses, {} evictions, {} dropped",
                schedule.len(),
                meta.scenario,
                meta.policy,
                meta.k,
                meta.table_shards,
                outcome.stats.total_hits(),
                outcome.stats.total_misses(),
                outcome.stats.total_evictions(),
                outcome.counters.total_records(),
            ));
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown format '{other}' (expected table or json)"
            )))
        }
    }
    Ok(())
}

/// Parse a seeded chaos plan like `"1@250k,2@1M"` into `(shard, n)`
/// pairs, validating the shard indices against the fleet size.
fn parse_chaos_plan(text: &str, shards: usize, flag: &str) -> Result<Vec<(usize, u64)>, CliError> {
    let mut out = Vec::new();
    for item in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (shard, n) = item.split_once('@').ok_or_else(|| {
            CliError::Usage(format!("bad --{flag} entry '{item}' (want SHARD@N)"))
        })?;
        let shard: usize = shard
            .trim()
            .parse()
            .map_err(|e| CliError::Usage(format!("bad shard in --{flag} entry '{item}': {e}")))?;
        if shard >= shards {
            return Err(CliError::Usage(format!(
                "--{flag} targets shard {shard} but the fleet has {shards} shard(s)"
            )));
        }
        let n = parse_scaled(n.trim())
            .map_err(|e| CliError::Usage(format!("bad count in --{flag} entry '{item}': {e}")))?;
        out.push((shard, n));
    }
    Ok(out)
}

/// Fault-tolerance and checkpointing options shared by `occ observe` and
/// `occ resume`.
struct DriveOpts<'a> {
    /// `Some` switches to the checked (`step_checked`) path; `None` keeps
    /// the monomorphized unchecked hot loop.
    degrade: Option<FaultPolicy>,
    /// Fault state to restore into the handler (resume only).
    resume_faults: Option<(&'a FaultCounters, &'a [UserId])>,
    /// Write a checkpoint every this many requests (0 = off).
    checkpoint_every: u64,
    /// Where checkpoints go (empty = off).
    checkpoint_path: &'a str,
}

impl DriveOpts<'_> {
    fn checkpoints_on(&self) -> bool {
        self.checkpoint_every > 0 && !self.checkpoint_path.is_empty()
    }
}

fn write_checkpoint(path: &str, snap: &EngineSnapshot) -> Result<(), CliError> {
    write_atomic_with_trailer(Path::new(path), &(snapshot_to_json(snap) + "\n"))
        .map_err(|e| CliError::Io(format!("write checkpoint {path}: {e}")))
}

/// Read a checkpoint back, insisting on an intact CRC trailer: a torn,
/// truncated, or bit-flipped snapshot is a parse error (exit 4), never
/// a silent partial resume.
fn read_checkpoint(path: &Path) -> Result<EngineSnapshot, CliError> {
    let shown = path.display();
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("read {shown}: {e}")))?;
    let body =
        require_trailer(&text).map_err(|e| CliError::Parse(format!("checkpoint {shown}: {e}")))?;
    Ok(snapshot_from_json(body)?)
}

/// Drive a stepping engine over `records` (starting at the engine's
/// current clock, which is nonzero when resuming) with a recorder
/// attached, invoking `sample(t, policy, is_final)` before every step and
/// once after the last one. Handles fault degradation and periodic
/// checkpoints per `opts`. Returns the final counters, steps consumed,
/// the policy's display name, the recorder, and the absorbed faults.
fn observe_drive<P, R, F>(
    mut eng: SteppingEngine<P, R>,
    records: &[Request],
    opts: &DriveOpts,
    mut sample: F,
) -> Result<(SimStats, u64, String, R, FaultCounters), CliError>
where
    P: ReplacementPolicy,
    R: occ_sim::Recorder,
    F: FnMut(Time, &P, bool),
{
    let start = eng.time() as usize;
    if start > records.len() {
        return Err(CliError::Usage(format!(
            "checkpoint is at t={start} but the stream has only {} records \
             (did the trace or chaos flags change?)",
            records.len()
        )));
    }
    let num_users = eng.ctx().universe.num_users();
    let mut handler = match opts.degrade {
        None => None,
        Some(p) => {
            let mut h = FaultHandler::new(p, num_users);
            if let Some((counters, quarantined)) = opts.resume_faults {
                h.restore(counters.clone(), quarantined)?;
                for &u in quarantined {
                    eng.remove_user_externally(u);
                }
            }
            Some(h)
        }
    };

    for r in &records[start..] {
        sample(eng.time(), eng.policy(), false);
        match &mut handler {
            None => {
                eng.step(*r);
            }
            Some(h) => {
                eng.step_checked(*r, h)?;
            }
        }
        if opts.checkpoints_on() && eng.time().is_multiple_of(opts.checkpoint_every) {
            let snap = match &handler {
                Some(h) => eng.snapshot_with_faults(h)?,
                None => eng.snapshot()?,
            };
            write_checkpoint(opts.checkpoint_path, &snap)?;
        }
    }
    sample(eng.time(), eng.policy(), true);
    if opts.checkpoints_on() {
        let snap = match &handler {
            Some(h) => eng.snapshot_with_faults(h)?,
            None => eng.snapshot()?,
        };
        write_checkpoint(opts.checkpoint_path, &snap)?;
    }
    let faults = handler.map(|h| h.counters().clone()).unwrap_or_default();
    let stats = eng.stats().clone();
    let steps = eng.time();
    let name = eng.policy().name();
    Ok((stats, steps, name, eng.into_recorder(), faults))
}

/// Run one policy with metrics (and optionally a JSONL event stream and
/// a dual-trajectory sampler) attached. `resume_from` rebuilds the
/// engine from a checkpoint instead of starting fresh.
#[allow(clippy::too_many_arguments)]
fn observe_policy<P: ReplacementPolicy>(
    k: usize,
    universe: &Universe,
    records: &[Request],
    resume_from: Option<&EngineSnapshot>,
    policy: P,
    rec: &mut MetricsRecorder,
    events_path: &str,
    opts: &DriveOpts,
    mut sample: impl FnMut(Time, &P, bool),
) -> Result<(SimStats, u64, String, FaultCounters), CliError> {
    let eng = match resume_from {
        Some(snap) => SteppingEngine::from_snapshot(snap, policy)?,
        None => SteppingEngine::new(k, universe.clone(), policy),
    };
    if events_path.is_empty() {
        let (stats, steps, name, _, faults) =
            observe_drive(eng.with_recorder(&mut *rec), records, opts, sample)?;
        Ok((stats, steps, name, faults))
    } else {
        let file = File::create(events_path)
            .map_err(|e| CliError::Io(format!("create {events_path}: {e}")))?;
        let sink = JsonlSink::new(BufWriter::new(file));
        let (stats, steps, name, (_, sink), faults) = observe_drive(
            eng.with_recorder((&mut *rec, sink)),
            records,
            opts,
            &mut sample,
        )?;
        sink.finish()
            .map_err(|e| CliError::Io(format!("writing {events_path}: {e}")))?;
        Ok((stats, steps, name, faults))
    }
}

/// Parse the `--chaos-*` flags into a fault plan (`None` when no fault
/// injection was requested) and apply it to the trace.
fn chaos_records(args: &Args, trace: &Trace) -> Result<(Vec<Request>, bool), CliError> {
    let page_rate: f64 = uarg(args.num_or("chaos-page-rate", 0.0f64))?;
    let owner_rate: f64 = uarg(args.num_or("chaos-owner-rate", 0.0f64))?;
    let truncate: u64 = uarg(args.num_or("chaos-truncate", 0u64))?;
    let seed: u64 = uarg(args.num_or("chaos-seed", 0xC4A05u64))?;
    for (name, rate) in [
        ("chaos-page-rate", page_rate),
        ("chaos-owner-rate", owner_rate),
    ] {
        if !(0.0..=1.0).contains(&rate) {
            return Err(CliError::Usage(format!(
                "--{name} must be in [0, 1], got {rate}"
            )));
        }
    }
    let mut plan = FaultPlan::seeded(seed)
        .with_page_rate(page_rate)
        .with_owner_rate(owner_rate);
    if truncate > 0 {
        plan = plan.with_truncate_at(truncate as usize);
    }
    if plan.is_clean() {
        return Ok((trace.requests().to_vec(), false));
    }
    let (records, injected) = plan.corrupt_trace(trace);
    eprintln!(
        "chaos: injected {} corrupt pages, {} wrong owners{} (seed {seed})",
        injected.pages,
        injected.owners,
        if injected.truncated {
            ", truncated"
        } else {
            ""
        },
    );
    Ok((records, true))
}

/// Parse `--degrade`: explicit flag wins; chaos injection without a flag
/// defaults to fail-fast (the library default), surfaced loudly.
fn degrade_from_args(args: &Args, chaos_active: bool) -> Result<Option<FaultPolicy>, CliError> {
    match args.str_or("degrade", "").as_str() {
        "" => Ok(chaos_active.then_some(FaultPolicy::FailFast)),
        name => FaultPolicy::parse(name).map(Some).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown --degrade policy '{name}' (fail-fast, skip, quarantine)"
            ))
        }),
    }
}

/// Assemble the observe/resume report from final engine state.
fn build_report(
    name: String,
    k: usize,
    stats: &SimStats,
    costs: &CostProfile,
    rec: &MetricsRecorder,
    dual: Option<&DualTrace>,
) -> Result<ObserveReport, CliError> {
    let requests = stats.total_hits().saturating_add(stats.total_misses());
    let misses = stats.total_misses();
    // The checked evaluation turns a pathological cost function (NaN,
    // overflow) into a typed fault instead of a silent NaN in the report.
    let total_cost = costs
        .total_cost_checked(&stats.eviction_vector())
        .map_err(|e| CliError::Fault(e.to_string()))?;
    Ok(ObserveReport {
        policy: name,
        capacity: k as u64,
        requests,
        hits: stats.total_hits(),
        misses,
        evictions: stats.total_evictions(),
        miss_rate: if requests == 0 {
            0.0
        } else {
            misses as f64 / requests as f64
        },
        total_cost: Some(total_cost),
        metrics: rec.to_json_value(),
        dual: dual.map(DualTrace::to_json_value),
    })
}

fn emit_report(report: &ObserveReport, out_path: &str) -> Result<(), CliError> {
    let text = report.to_json();
    if out_path.is_empty() {
        emit(&text);
    } else {
        std::fs::write(out_path, text + "\n")
            .map_err(|e| CliError::Io(format!("write {out_path}: {e}")))?;
        eprintln!("wrote report to {out_path}");
    }
    Ok(())
}

/// `occ observe`
pub fn observe(args: &Args) -> Result<(), CliError> {
    let scenario = find_scenario(&uarg(args.str_required("scenario"))?)?;
    let trace = load_or_generate(args, &scenario)?;
    let k: usize = uarg(args.num_or("k", scenario.suggested_k))?;
    let policy_name = args.str_or("policy", "convex");
    let every: u64 = uarg(args.num_or("every", 1_000u64))?;
    let events_path = args.str_or("events", "");
    let out_path = args.str_or("out", "");
    let checkpoint_path = args.str_or("checkpoint", "");
    let checkpoint_every: u64 = uarg(args.num_or("checkpoint-every", 10_000u64))?;

    let (records, chaos_active) = chaos_records(args, &trace)?;
    let degrade = degrade_from_args(args, chaos_active)?;
    let opts = DriveOpts {
        degrade,
        resume_faults: None,
        checkpoint_every,
        checkpoint_path: &checkpoint_path,
    };

    let mut rec = MetricsRecorder::new();
    let mut dual: Option<DualTrace> = None;
    let universe = trace.universe().clone();
    let (stats, steps, name, faults) = if policy_name == "convex" {
        let alg = ConvexCaching::new(scenario.costs.clone());
        let mut dt = DualTrace::new(every);
        let out = observe_policy(
            k,
            &universe,
            &records,
            None,
            alg,
            &mut rec,
            &events_path,
            &opts,
            |t, p, fin| {
                if fin {
                    dt.finalize(t, p);
                } else {
                    dt.maybe_sample(t, p);
                }
            },
        )?;
        dual = Some(dt);
        out
    } else {
        let policy = make_policy(&policy_name, &scenario.costs, &trace)?;
        observe_policy(
            k,
            &universe,
            &records,
            None,
            policy,
            &mut rec,
            &events_path,
            &opts,
            |_, _, _| {},
        )?
    };

    if !faults.is_clean() {
        eprintln!(
            "degraded ({}): absorbed {} faulty records, quarantined {} users",
            degrade.unwrap_or_default(),
            faults.total_records(),
            faults.quarantined_users
        );
    }
    let report = build_report(name, k, &stats, &scenario.costs, &rec, dual.as_ref())?;
    debug_assert_eq!(steps as usize, records.len());
    emit_report(&report, &out_path)
}

/// `occ resume`
pub fn resume(args: &Args) -> Result<(), CliError> {
    let from = uarg(args.str_required("from"))?;
    let snap = read_checkpoint(Path::new(&from))?;

    let scenario = find_scenario(&uarg(args.str_required("scenario"))?)?;
    let trace = load_or_generate(args, &scenario)?;
    if trace.universe().owners() != snap.owners.as_slice() {
        return Err(CliError::Usage(format!(
            "snapshot universe ({} pages / {} users) does not match the trace; \
             resume needs the same --scenario/--len/--seed (or --trace) as the original run",
            snap.owners.len(),
            snap.num_users
        )));
    }
    // Capacity comes from the snapshot; an explicit --k must agree.
    let k: usize = uarg(args.num_or("k", snap.capacity))?;
    if k != snap.capacity {
        return Err(CliError::Usage(format!(
            "--k {k} disagrees with the snapshot's capacity {}",
            snap.capacity
        )));
    }
    let policy_name = args.str_or("policy", "convex");
    let every: u64 = uarg(args.num_or("every", 1_000u64))?;
    let events_path = args.str_or("events", "");
    let out_path = args.str_or("out", "");
    let checkpoint_path = args.str_or("checkpoint", "");
    let checkpoint_every: u64 = uarg(args.num_or("checkpoint-every", 10_000u64))?;

    let (records, chaos_active) = chaos_records(args, &trace)?;
    let degrade = degrade_from_args(args, chaos_active)?;
    if degrade.is_none() && !(snap.faults.is_clean() && snap.quarantined.is_empty()) {
        return Err(CliError::Usage(
            "snapshot comes from a degraded run; pass --degrade to continue it".into(),
        ));
    }
    let opts = DriveOpts {
        degrade,
        resume_faults: degrade
            .is_some()
            .then_some((&snap.faults, snap.quarantined.as_slice())),
        checkpoint_every,
        checkpoint_path: &checkpoint_path,
    };

    let mut rec = MetricsRecorder::new();
    let mut dual: Option<DualTrace> = None;
    let universe = trace.universe().clone();
    let (stats, _steps, name, faults) = if policy_name == "convex" {
        let alg = ConvexCaching::new(scenario.costs.clone());
        let mut dt = DualTrace::new(every);
        let out = observe_policy(
            k,
            &universe,
            &records,
            Some(&snap),
            alg,
            &mut rec,
            &events_path,
            &opts,
            |t, p, fin| {
                if fin {
                    dt.finalize(t, p);
                } else {
                    dt.maybe_sample(t, p);
                }
            },
        )?;
        dual = Some(dt);
        out
    } else {
        let policy = make_policy(&policy_name, &scenario.costs, &trace)?;
        observe_policy(
            k,
            &universe,
            &records,
            Some(&snap),
            policy,
            &mut rec,
            &events_path,
            &opts,
            |_, _, _| {},
        )?
    };

    eprintln!(
        "resumed from t={} ({} of {} records remained)",
        snap.time,
        records.len().saturating_sub(snap.time as usize),
        records.len()
    );
    if !faults.is_clean() {
        eprintln!(
            "degraded ({}): {} faulty records total, {} users quarantined",
            degrade.unwrap_or_default(),
            faults.total_records(),
            faults.quarantined_users
        );
    }
    let report = build_report(name, k, &stats, &scenario.costs, &rec, dual.as_ref())?;
    emit_report(&report, &out_path)
}

/// Streaming request feed for `occ soak`: a synthetic scenario mix or a
/// trace file (binary occbin01/occbin02 — mmap-served where possible —
/// or a real-trace CSV). All hold O(1) heap regardless of run length —
/// soak never materializes a trace.
enum SoakSource {
    Mix(TenantMixSource),
    File(FileFeed),
}

impl RequestSource for SoakSource {
    fn universe(&self) -> &Universe {
        match self {
            SoakSource::Mix(m) => m.universe(),
            SoakSource::File(f) => RequestSource::universe(f),
        }
    }

    fn next_request(&mut self, ctx: &occ_sim::EngineCtx) -> Option<Request> {
        match self {
            SoakSource::Mix(m) => m.next_request(ctx),
            SoakSource::File(f) => f.next_request(ctx),
        }
    }

    fn next_run(&mut self, max: usize) -> Option<&[Request]> {
        match self {
            SoakSource::Mix(_) => None,
            SoakSource::File(f) => f.next_run(max),
        }
    }

    fn next_page_run(&mut self, max: usize) -> Option<&[PageId]> {
        match self {
            SoakSource::Mix(_) => None,
            SoakSource::File(f) => f.next_page_run(max),
        }
    }
}

/// Everything `run_soak` needs beyond the engine inputs.
struct SoakOpts<'a> {
    /// Tumbling-window width in requests.
    window: u64,
    /// JSONL series destination (empty = no series file).
    series_path: &'a str,
    /// Header metadata for the series file.
    meta: &'a [(&'a str, Json)],
    /// Checkpoint cadence in requests, already rounded to a window
    /// multiple (0 = off).
    checkpoint_every: u64,
    /// Checkpoint destination (empty = off).
    checkpoint_path: &'a str,
    /// Print progress to stderr roughly once a second.
    heartbeat: bool,
    /// Total requests the run aims for (resume included), for ETA.
    target: u64,
}

impl SoakOpts<'_> {
    fn checkpoints_on(&self) -> bool {
        self.checkpoint_every > 0 && !self.checkpoint_path.is_empty()
    }
}

/// Outcome of a soak drive, for the final summary tables.
struct SoakSummary {
    stats: SimStats,
    /// Counters restored from the checkpoint (all zero on a fresh run);
    /// the window totals cover only `stats - base`.
    base: SimStats,
    served: u64,
    policy: String,
    windows: u64,
    series_lines: u64,
    elapsed: std::time::Duration,
    end_t: Time,
}

/// Pull one `kB`-valued field out of a `/proc/self/status` dump. Every
/// step is fallible — the line can be absent (restricted /proc,
/// non-Linux emulation layers) or malformed — and each failure is a
/// `None`, never a panic in the heartbeat path.
fn parse_status_kb(status: &str, field: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Pull the resident-set size (in kB) out of a `/proc/self/status`
/// dump.
fn parse_vmrss_kb(status: &str) -> Option<u64> {
    parse_status_kb(status, "VmRSS:")
}

/// Resident-set figures for the heartbeat: total RSS plus, when the
/// kernel breaks it down, the anonymous portion on its own. The
/// distinction matters for mmap-backed ingestion: the file mapping's
/// resident pages are reclaimable page cache counted into `VmRSS`, so
/// on a big trace the total balloons while the engine's own footprint
/// (`RssAnon`) stays flat. Reporting both keeps the O(1)-memory claim
/// checkable from the heartbeat.
struct RssSample {
    total: u64,
    /// `RssAnon` — absent when only the `/proc/self/statm` fallback (or
    /// an old kernel's status file) is available.
    anon: Option<u64>,
}

fn rss_sample() -> Option<RssSample> {
    if let Ok(text) = std::fs::read_to_string("/proc/self/status") {
        if let Some(kb) = parse_vmrss_kb(&text) {
            return Some(RssSample {
                total: kb * 1024,
                anon: parse_status_kb(&text, "RssAnon:").map(|kb| kb * 1024),
            });
        }
    }
    let text = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = text.split_whitespace().nth(1)?.parse().ok()?;
    Some(RssSample {
        total: pages * 4096,
        anon: None,
    })
}

/// Check that the window-delta totals match the engine's own counters
/// exactly — the windows tile the run, so any drift is a bug.
fn check_window_totals(
    total: &WindowDelta,
    stats: &SimStats,
    base: &SimStats,
) -> Result<(), String> {
    let d_hits = stats.total_hits() - base.total_hits();
    let d_misses = stats.total_misses() - base.total_misses();
    let d_evictions = stats.total_evictions() - base.total_evictions();
    if total.hits != d_hits || total.misses() != d_misses || total.evictions != d_evictions {
        return Err(format!(
            "window sums (hits {}, misses {}, evictions {}) != engine totals \
             (hits {d_hits}, misses {d_misses}, evictions {d_evictions})",
            total.hits,
            total.misses(),
            total.evictions
        ));
    }
    let at = |v: &[u64], u: usize| v.get(u).copied().unwrap_or(0);
    for (u, us) in stats.per_user().iter().enumerate() {
        let b = base.per_user().get(u).copied().unwrap_or_default();
        if at(&total.hits_by_user, u) != us.hits - b.hits
            || at(&total.misses_by_user, u) != us.misses - b.misses
            || at(&total.evictions_by_user, u) != us.evictions - b.evictions
        {
            return Err(format!("per-tenant window sums diverged for tenant {u}"));
        }
    }
    Ok(())
}

/// Drive a soak run: step the source to exhaustion, close a window every
/// `opts.window` requests (sampling the dual state via `probe` at each
/// boundary), stream closed windows to the series sink, checkpoint at
/// aligned multiples, and verify at the end that the window deltas sum
/// exactly to the engine's own totals.
fn run_soak<P, const TIMED: bool>(
    k: usize,
    snap: Option<&EngineSnapshot>,
    policy: P,
    source: &mut SoakSource,
    opts: &SoakOpts,
    probe: &mut dyn FnMut(&P) -> Option<DualPoint>,
) -> Result<SoakSummary, CliError>
where
    P: ReplacementPolicy,
{
    let eng = match snap {
        Some(s) => SteppingEngine::from_snapshot(s, policy)?,
        None => SteppingEngine::new(k, source.universe().clone(), policy),
    };
    let start_t = eng.time();
    let mut eng = eng.with_recorder(
        WindowedRecorder::<TIMED>::starting_at(opts.window, start_t).with_ring_capacity(64),
    );
    let base = eng.stats().clone();

    // Fast-forward the source to the checkpoint's position so the
    // resumed stream continues exactly where the interrupted one left
    // off. The synthetic mixer skips without building requests; the
    // trace reader has to decode (and discard) the prefix.
    match source {
        SoakSource::Mix(m) => m.skip(start_t),
        SoakSource::File(_) => {
            for i in 0..start_t {
                let next = {
                    let ctx = eng.ctx();
                    source.next_request(&ctx)
                };
                if next.is_none() {
                    return Err(CliError::Usage(format!(
                        "checkpoint is at t={start_t} but the trace ended after {i} requests \
                         (is this the right trace?)"
                    )));
                }
            }
        }
    }

    // The series streams to `<path>.tmp` through a CRC accumulator and
    // only moves to its final name — trailer appended, fsynced, renamed
    // — after a successful finish. A killed soak leaves the temp file
    // behind; readers never see a torn or trailer-less final series.
    // Targets that are not regular files (a device like /dev/full, a
    // fifo feeding a live consumer) cannot be atomically replaced —
    // renaming over them would swap the node out — so those are written
    // in place and write errors still surface with the i/o class.
    let series_direct = !opts.series_path.is_empty()
        && std::fs::metadata(opts.series_path)
            .map(|m| !m.is_file())
            .unwrap_or(false);
    let series_tmp = if series_direct {
        Path::new(opts.series_path).to_path_buf()
    } else {
        occ_probe::atomicio::tmp_path(Path::new(opts.series_path))
    };
    let mut sink = if opts.series_path.is_empty() {
        None
    } else {
        let file = File::create(&series_tmp)
            .map_err(|e| CliError::Io(format!("create {}: {e}", series_tmp.display())))?;
        let mut s = SeriesSink::new(CrcWriter::new(BufWriter::new(file)));
        s.write_header(opts.window, opts.meta);
        Some(s)
    };

    let started = Instant::now();
    let mut last_beat = started;
    let mut total = WindowDelta::default();
    let mut windows = 0u64;
    let mut served = 0u64;
    loop {
        // Serve in batches clamped to the next window boundary, so the
        // boundary work below still happens at exact multiples of the
        // window width. Trace feeds hand out runs (zero-copy page-id
        // slices from the mmap path); the mixer and CSV adapters fall
        // through to the scalar pull.
        let to_boundary = opts.window - (eng.time() % opts.window);
        let max = to_boundary.min(occ_sim::DEFAULT_BATCH_SIZE as u64) as usize;
        let stepped = if let Some(run) = source.next_page_run(max).filter(|r| !r.is_empty()) {
            let n = run.len() as u64;
            eng.step_page_batch(run);
            n
        } else if let Some(run) = source.next_run(max).filter(|r| !r.is_empty()) {
            let n = run.len() as u64;
            eng.step_batch(run);
            n
        } else {
            let next = {
                let ctx = eng.ctx();
                source.next_request(&ctx)
            };
            match next {
                Some(r) => {
                    eng.step(r);
                    1
                }
                None => break,
            }
        };
        served += stepped;
        let t = eng.time();
        if !t.is_multiple_of(opts.window) {
            continue;
        }
        // Window boundary: attach the dual point to the window that is
        // about to close, roll, and drain it to the sink.
        if let Some(point) = probe(eng.policy()) {
            eng.recorder_mut().note_dual(point);
        }
        eng.recorder_mut().roll_to(t);
        for w in eng.recorder_mut().drain_new() {
            total.merge_from(&w);
            windows += 1;
            if let Some(s) = &mut sink {
                s.write_window(&w);
            }
        }
        if opts.checkpoints_on() && t.is_multiple_of(opts.checkpoint_every) {
            write_checkpoint(opts.checkpoint_path, &eng.snapshot()?)?;
        }
        if opts.heartbeat {
            let now = Instant::now();
            if now.duration_since(last_beat).as_secs_f64() >= 1.0 {
                last_beat = now;
                let rate = served as f64 / started.elapsed().as_secs_f64();
                let eta = if opts.target > t && rate > 0.0 {
                    format!("{:.0}s", (opts.target - t) as f64 / rate)
                } else {
                    "-".into()
                };
                let rss = match rss_sample() {
                    // Report anon separately: the mmap ingestion path
                    // legitimately pins file-backed pages into RSS.
                    Some(RssSample {
                        total,
                        anon: Some(anon),
                    }) => format!("{} MB (anon {} MB)", total / (1 << 20), anon / (1 << 20)),
                    Some(RssSample { total, anon: None }) => {
                        format!("{} MB", total / (1 << 20))
                    }
                    None => "n/a".into(),
                };
                eprintln!(
                    "soak: {t}/{} requests · {} req/s · ETA {eta} · RSS {rss}",
                    opts.target,
                    fnum(rate)
                );
            }
        }
    }
    let end_t = eng.time();
    if !end_t.is_multiple_of(opts.window) {
        if let Some(point) = probe(eng.policy()) {
            eng.recorder_mut().note_dual(point);
        }
    }
    eng.recorder_mut().finalize(end_t);
    for w in eng.recorder_mut().drain_new() {
        total.merge_from(&w);
        windows += 1;
        if let Some(s) = &mut sink {
            s.write_window(&w);
        }
    }
    if opts.checkpoints_on() {
        write_checkpoint(opts.checkpoint_path, &eng.snapshot()?)?;
    }

    // A trace that failed mid-stream parked its error and ended the
    // stream early; surface it instead of reporting a short run.
    if let SoakSource::File(f) = source {
        if let Some(e) = f.error() {
            return Err(match e {
                TraceIoError::Io(io) => CliError::Io(format!("reading trace: {io}")),
                TraceIoError::Parse(m) => CliError::Parse(format!("trace parse error: {m}")),
            });
        }
    }
    // Sticky sink errors surface here (exit 3) rather than silently
    // dropping the tail of the series.
    let series_lines = match sink {
        None => 0,
        Some(s) => {
            let ioerr =
                |e: std::io::Error| CliError::Io(format!("writing {}: {e}", opts.series_path));
            let lines = s.lines();
            let mut w = s.finish().map_err(ioerr)?;
            let crc = w.crc();
            {
                use std::io::Write as _;
                // The trailer bypasses the CRC accumulator: it carries
                // the checksum of everything before it.
                w.inner_mut()
                    .write_all(occ_probe::atomicio::trailer_line(crc).as_bytes())
                    .and_then(|()| w.flush())
                    .map_err(ioerr)?;
            }
            let (buf, _) = w.into_parts();
            let file = buf
                .into_inner()
                .map_err(|e| CliError::Io(format!("writing {}: {e}", opts.series_path)))?;
            if series_direct {
                // In-place target: nothing to rename, and fsync is not
                // meaningful on devices/fifos.
                drop(file);
            } else {
                file.sync_all().map_err(ioerr)?;
                drop(file);
                std::fs::rename(&series_tmp, opts.series_path).map_err(ioerr)?;
            }
            lines
        }
    };

    let stats = eng.stats().clone();
    check_window_totals(&total, &stats, &base).map_err(CliError::Other)?;
    Ok(SoakSummary {
        stats,
        base,
        served,
        policy: eng.policy().name(),
        windows,
        series_lines,
        elapsed: started.elapsed(),
        end_t,
    })
}

/// `occ soak`
pub fn soak(args: &Args) -> Result<(), CliError> {
    let scenario = find_scenario(&uarg(args.str_required("scenario"))?)?;
    let len = uarg(args.scaled_or("len", 10_000_000))?;
    let seed: u64 = uarg(args.num_or("seed", 7u64))?;
    let window = uarg(args.scaled_or("window", 1_000_000))?;
    if window == 0 {
        return Err(CliError::Usage("--window must be positive".into()));
    }
    let policy_name = args.str_or("policy", "convex");
    if policy_name == "belady" || policy_name == "belady-cost" {
        return Err(CliError::Usage(format!(
            "policy '{policy_name}' is offline; soak streams its workload \
             and never materializes a trace"
        )));
    }
    if make_online_policy(&policy_name, &scenario.costs).is_none() {
        return Err(CliError::Usage(format!("unknown policy '{policy_name}'")));
    }
    let series_path = args.str_or("series", "");
    let timed = match args.str_or("timing", "off").as_str() {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --timing mode '{other}' (on, off; timed windows carry wall-clock \
                 latency histograms and are not byte-reproducible)"
            )))
        }
    };
    let heartbeat = match args.str_or("heartbeat", "on").as_str() {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --heartbeat mode '{other}' (on, off)"
            )))
        }
    };
    let checkpoint_path = args.str_or("checkpoint", "");
    let mut checkpoint_every = uarg(args.scaled_or("checkpoint-every", 0))?;
    if !checkpoint_path.is_empty() && checkpoint_every == 0 {
        checkpoint_every = window;
    }
    if checkpoint_every > 0 {
        // Checkpoints land on window boundaries so a resumed series
        // continues byte-identically (no partial-window state to lose).
        let rounded = checkpoint_every.div_ceil(window) * window;
        if rounded != checkpoint_every {
            eprintln!(
                "soak: rounding --checkpoint-every {checkpoint_every} up to {rounded} \
                 (a multiple of --window {window})"
            );
        }
        checkpoint_every = rounded;
    }

    // Source: the scenario's streaming mixer, or a trace file
    // (occbin01/occbin02/CSV — `open_trace_feed` sniffs and checks the
    // tenant structure against the scenario).
    let trace_path = args.str_or("trace", "");
    let mut source = if trace_path.is_empty() {
        SoakSource::Mix(scenario.stream(len, seed))
    } else {
        let feed = open_trace_feed(args, &trace_path, &scenario)?;
        eprintln!(
            "soak: streaming {trace_path} via the {} path",
            feed.strategy()
        );
        SoakSource::File(feed)
    };
    let target = match &source {
        SoakSource::Mix(_) => len,
        SoakSource::File(f) => f.total_requests(),
    };

    // Resume from a checkpoint written by an earlier soak.
    let from = args.str_or("from", "");
    let snap = if from.is_empty() {
        None
    } else {
        Some(read_checkpoint(Path::new(&from))?)
    };
    let k = match &snap {
        Some(s) => {
            if source.universe().owners() != s.owners.as_slice() {
                return Err(CliError::Usage(format!(
                    "snapshot universe ({} pages / {} users) does not match the stream; \
                     resume needs the same --scenario/--len/--seed (or --trace)",
                    s.owners.len(),
                    s.num_users
                )));
            }
            if !s.time.is_multiple_of(window) {
                return Err(CliError::Usage(format!(
                    "checkpoint is at t={} which is mid-window for --window {window}; \
                     resume with the original window width",
                    s.time
                )));
            }
            if !(s.faults.is_clean() && s.quarantined.is_empty()) {
                return Err(CliError::Usage(
                    "snapshot comes from a degraded run; soak has no fault handling — \
                     continue it with `occ resume --degrade ...`"
                        .into(),
                ));
            }
            let k: usize = uarg(args.num_or("k", s.capacity))?;
            if k != s.capacity {
                return Err(CliError::Usage(format!(
                    "--k {k} disagrees with the snapshot's capacity {}",
                    s.capacity
                )));
            }
            k
        }
        None => uarg(args.num_or("k", scenario.suggested_k))?,
    };
    let start_t = snap.as_ref().map(|s| s.time).unwrap_or(0);

    let meta = [
        ("scenario", Json::Str(scenario.name.to_string())),
        ("policy", Json::Str(policy_name.clone())),
        ("k", Json::from_u64(k as u64)),
        ("seed", Json::from_u64(seed)),
        ("len", Json::from_u64(target)),
        ("start", Json::from_u64(start_t)),
    ];
    let opts = SoakOpts {
        window,
        series_path: &series_path,
        meta: &meta,
        checkpoint_every,
        checkpoint_path: &checkpoint_path,
        heartbeat,
        target,
    };

    let summary = if policy_name == "convex" {
        let alg = ConvexCaching::new(scenario.costs.clone());
        let mut probe = |p: &ConvexCaching| {
            Some(DualPoint {
                dual_offset: p.cumulative_dual_offset(),
                total_evictions: p.eviction_counts().iter().sum(),
                primal_cost: p.primal_cost(),
            })
        };
        if timed {
            run_soak::<_, true>(k, snap.as_ref(), alg, &mut source, &opts, &mut probe)?
        } else {
            run_soak::<_, false>(k, snap.as_ref(), alg, &mut source, &opts, &mut probe)?
        }
    } else {
        let policy = make_online_policy(&policy_name, &scenario.costs).expect("validated above");
        // The probe argument type must match run_soak's `P` exactly, and
        // here `P` really is the boxed trait object.
        #[allow(clippy::borrowed_box)]
        let mut probe = |_: &Box<dyn ReplacementPolicy>| None;
        if timed {
            run_soak::<_, true>(k, snap.as_ref(), policy, &mut source, &opts, &mut probe)?
        } else {
            run_soak::<_, false>(k, snap.as_ref(), policy, &mut source, &opts, &mut probe)?
        }
    };

    if start_t > 0 {
        eprintln!(
            "soak: resumed from t={start_t}, served {} more requests",
            summary.served
        );
    }
    let requests = summary.stats.total_hits() + summary.stats.total_misses();
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["policy".into(), summary.policy.clone()]);
    t.row(vec!["k".into(), k.to_string()]);
    t.row(vec!["requests".into(), requests.to_string()]);
    t.row(vec!["window".into(), window.to_string()]);
    t.row(vec!["windows".into(), summary.windows.to_string()]);
    t.row(vec!["hits".into(), summary.stats.total_hits().to_string()]);
    t.row(vec![
        "misses".into(),
        summary.stats.total_misses().to_string(),
    ]);
    t.row(vec![
        "miss_rate".into(),
        format!(
            "{:.4}",
            if requests == 0 {
                0.0
            } else {
                summary.stats.total_misses() as f64 / requests as f64
            }
        ),
    ]);
    t.row(vec![
        "evictions".into(),
        summary.stats.total_evictions().to_string(),
    ]);
    t.row(vec![
        "req/s".into(),
        fnum(summary.served as f64 / summary.elapsed.as_secs_f64().max(1e-9)),
    ]);
    if !series_path.is_empty() {
        t.row(vec![
            "series".into(),
            format!("{series_path} ({} lines)", summary.series_lines),
        ]);
    }
    emit(&t.to_markdown());

    let mut per = Table::new(vec!["tenant", "hits", "misses", "miss%", "evictions"]);
    for (u, us) in summary.stats.per_user().iter().enumerate() {
        let reqs = us.hits + us.misses;
        per.row(vec![
            u.to_string(),
            us.hits.to_string(),
            us.misses.to_string(),
            format!(
                "{:.3}",
                if reqs == 0 {
                    0.0
                } else {
                    us.misses as f64 / reqs as f64
                }
            ),
            us.evictions.to_string(),
        ]);
    }
    emit(&per.to_markdown());
    eprintln!(
        "soak: window sums verified against engine totals ({} windows, t={}..{})",
        summary.windows,
        summary.base.total_hits() + summary.base.total_misses(),
        summary.end_t
    );
    Ok(())
}

/// Render a JSONL window series as an aligned table with per-window Δ
/// markers (`occ report --series`).
fn report_series(path: &str, format: &str) -> Result<(), CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("read {path}: {e}")))?;
    let file = SeriesFile::parse(&text).map_err(CliError::Parse)?;
    match format {
        "json" => emit(&file.series().to_json_value().to_json()),
        "table" => {
            let any_latency = file.windows.iter().any(|w| w.latency_ns.is_some());
            let any_dual = file.windows.iter().any(|w| w.dual.is_some());
            let mut head = vec![
                "window", "span", "requests", "miss%", "Δ", "evict", "faults",
            ];
            if any_latency {
                head.push("p99(ns)");
            }
            if any_dual {
                head.push("dual Y");
            }
            let mut t = Table::new(head);
            let mut prev: Option<f64> = None;
            for w in &file.windows {
                let mr = w.miss_ratio();
                let delta = match prev {
                    None => "·".to_string(),
                    Some(p) if (mr - p).abs() < 5e-4 => "·".to_string(),
                    Some(p) => format!("{:+.3}", mr - p),
                };
                prev = Some(mr);
                let mut row = vec![
                    w.index.to_string(),
                    format!("{}..{}", w.start, w.end),
                    w.requests().to_string(),
                    format!("{:.3}", mr),
                    delta,
                    (w.evictions + w.flush_evictions).to_string(),
                    w.faults.total_records().to_string(),
                ];
                if any_latency {
                    row.push(
                        w.latency_ns
                            .as_ref()
                            .map(|h| h.p99().to_string())
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                if any_dual {
                    row.push(
                        w.dual
                            .as_ref()
                            .map(|d| fnum(d.dual_offset))
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                t.row(row);
            }
            emit(&t.to_markdown());
            let total = file.series().total();
            emit(&format!(
                "series: {} windows of {} requests · {} requests total · overall miss ratio {:.3}",
                file.windows.len(),
                file.width,
                total.requests(),
                total.miss_ratio()
            ));
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown format '{other}' (table, json)"
            )))
        }
    }
    Ok(())
}

/// `occ report`
pub fn report(args: &Args) -> Result<(), CliError> {
    let series_path = args.str_or("series", "");
    if !series_path.is_empty() {
        return report_series(&series_path, &args.str_or("format", "table"));
    }
    let path = uarg(args.str_required("in"))?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| CliError::Io(format!("read {path}: {e}")))?;
    let parsed = Json::parse(&text).map_err(|e| CliError::Parse(format!("{path}: {e}")))?;
    ObserveReport::validate(&parsed).map_err(CliError::Parse)?;
    let r = ObserveReport::from_json_value(&parsed).map_err(CliError::Parse)?;
    match args.str_or("format", "table").as_str() {
        "table" => emit(&r.to_table()),
        "json" => emit(&r.to_json()),
        other => {
            return Err(CliError::Usage(format!(
                "unknown format '{other}' (table, json)"
            )))
        }
    }
    Ok(())
}

/// `occ conformance`
pub fn conformance(args: &Args) -> Result<(), CliError> {
    let grid_name = args.str_or("grid", "smoke");
    let grid = occ_conformance::grid(&grid_name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown grid '{grid_name}' (available: {})",
            occ_conformance::GRID_NAMES.join(", ")
        ))
    })?;
    let seed = uarg(args.num_or("seed", 7u64))?;
    let weaken = uarg(args.num_or("weaken", 1.0f64))?;
    if !weaken.is_finite() || weaken <= 0.0 {
        return Err(CliError::Usage(
            "--weaken must be a positive finite factor".into(),
        ));
    }
    let shrink = match args.str_or("shrink", "on").as_str() {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --shrink mode '{other}' (on, off)"
            )))
        }
    };
    let cfg = occ_conformance::RunConfig {
        seed,
        weaken,
        shrink,
    };
    let outcome = occ_conformance::run_grid(&grid, &cfg);

    // Timings are observability, never verdict data: they go to stderr
    // so the JSON below stays byte-deterministic.
    let total_ns: u64 = outcome.cell_elapsed_ns.iter().map(|(_, ns)| ns).sum();
    if let Some((slowest, ns)) = outcome.cell_elapsed_ns.iter().max_by_key(|(_, ns)| *ns) {
        eprintln!(
            "{} cells in {:.1} ms (slowest {slowest}: {:.1} ms); step latency p99 {} ns",
            grid.cells.len(),
            total_ns as f64 / 1e6,
            *ns as f64 / 1e6,
            outcome.metrics.latency_ns().p99(),
        );
    }

    let json = outcome.verdicts.to_json();
    let out_path = args.str_or("out", "");
    if !out_path.is_empty() {
        std::fs::write(&out_path, format!("{json}\n"))
            .map_err(|e| CliError::Io(format!("write {out_path}: {e}")))?;
        eprintln!("verdicts written to {out_path}");
    }
    match args.str_or("format", "table").as_str() {
        "table" => emit(&outcome.verdicts.to_table()),
        "json" => emit(&json),
        other => {
            return Err(CliError::Usage(format!(
                "unknown format '{other}' (table, json)"
            )))
        }
    }

    let (_, fail, _) = outcome.verdicts.counts();
    if fail > 0 {
        return Err(CliError::Conformance(format!(
            "{fail} of {} cells FAILed their bound (grid {grid_name}, seed {seed}, weaken {weaken})",
            grid.cells.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn scenarios_lists_without_error() {
        scenarios().unwrap();
    }

    #[test]
    fn unknown_scenario_is_friendly() {
        let err = find_scenario("nope").map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("available"));
        assert_eq!(err.exit_code(), 2, "unknown scenario is a usage error");
    }

    #[test]
    fn run_compare_and_mrc_on_generated_trace() {
        run(&args(&[
            "run",
            "--scenario",
            "two-tier",
            "--len",
            "500",
            "--k",
            "8",
        ]))
        .unwrap();
        compare(&args(&[
            "compare",
            "--scenario",
            "two-tier",
            "--len",
            "500",
            "--k",
            "8",
        ]))
        .unwrap();
        mrc(&args(&[
            "mrc",
            "--scenario",
            "two-tier",
            "--len",
            "500",
            "--max-k",
            "8",
        ]))
        .unwrap();
    }

    #[test]
    fn conformance_smoke_passes_and_writes_deterministic_verdicts() {
        let dir = std::env::temp_dir().join("occ-cli-conformance-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a_path = dir.join("verdicts-a.json");
        let b_path = dir.join("verdicts-b.json");
        for path in [&a_path, &b_path] {
            conformance(&args(&[
                "conformance",
                "--grid",
                "smoke",
                "--seed",
                "7",
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
        }
        let a = std::fs::read(&a_path).unwrap();
        let b = std::fs::read(&b_path).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed ⇒ byte-identical verdict JSON");
        let parsed = Json::parse(std::str::from_utf8(&a).unwrap()).unwrap();
        occ_conformance::VerdictTable::validate(&parsed).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn conformance_weakened_bounds_exit_with_code_6() {
        let err = conformance(&args(&[
            "conformance",
            "--grid",
            "smoke",
            "--weaken",
            "1e-6",
            "--shrink",
            "off",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert_eq!(err.class(), "conformance");
        assert!(err.to_string().contains("FAILed"));
    }

    #[test]
    fn conformance_rejects_bad_flags_as_usage_errors() {
        for bad in [
            vec!["conformance", "--grid", "nope"],
            vec!["conformance", "--weaken", "0"],
            vec!["conformance", "--weaken", "-1"],
            vec!["conformance", "--shrink", "maybe"],
            vec!["conformance", "--format", "xml"],
        ] {
            let err = conformance(&args(&bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn concurrent_run_schedule_roundtrip_and_replay() {
        let dir = std::env::temp_dir().join("occ-cli-concurrent-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sched = dir.join("schedule.txt");
        let run_json = dir.join("run.json");
        let replay_json = dir.join("replay.json");
        concurrent(&args(&[
            "concurrent",
            "--scenario",
            "two-tier",
            "--threads",
            "4",
            "--table-shards",
            "4",
            "--len",
            "800",
            "--k",
            "8",
            "--format",
            "json",
            "--schedule-out",
            sched.to_str().unwrap(),
            "--out",
            run_json.to_str().unwrap(),
        ]))
        .unwrap();
        concurrent(&args(&[
            "concurrent",
            "--replay",
            sched.to_str().unwrap(),
            "--out",
            replay_json.to_str().unwrap(),
        ]))
        .unwrap();
        let run = Json::parse(&std::fs::read_to_string(&run_json).unwrap()).unwrap();
        let rep = Json::parse(&std::fs::read_to_string(&replay_json).unwrap()).unwrap();
        for section in ["users", "faults", "quarantined"] {
            let a = run.get(section).unwrap().to_json();
            let b = rep.get(section).unwrap().to_json();
            assert_eq!(a, b, "run and replay disagree on '{section}'");
        }
        assert_eq!(
            run.get("commits").unwrap().to_json(),
            rep.get("commits").unwrap().to_json()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_chaos_quarantine_smoke() {
        concurrent(&args(&[
            "concurrent",
            "--scenario",
            "two-tier",
            "--threads",
            "3",
            "--len",
            "500",
            "--chaos-owner-rate",
            "0.02",
            "--degrade",
            "quarantine",
            "--format",
            "json",
        ]))
        .unwrap();
    }

    #[test]
    fn concurrent_rejects_bad_flags_as_usage_errors() {
        for bad in [
            vec!["concurrent", "--scenario", "two-tier", "--threads", "0"],
            vec![
                "concurrent",
                "--scenario",
                "two-tier",
                "--table-shards",
                "0",
            ],
            vec!["concurrent", "--scenario", "two-tier", "--k", "0"],
            vec!["concurrent", "--scenario", "two-tier", "--policy", "convex"],
            vec!["concurrent", "--scenario", "two-tier", "--policy", "lfu"],
            vec!["concurrent", "--scenario", "two-tier", "--verify", "maybe"],
            vec!["concurrent", "--scenario", "two-tier", "--format", "xml"],
            vec![
                "concurrent",
                "--scenario",
                "two-tier",
                "--chaos-page-rate",
                "1.5",
            ],
        ] {
            let err = concurrent(&args(&bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn concurrent_replay_rejects_corrupt_schedules() {
        let dir = std::env::temp_dir().join("occ-cli-concurrent-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        // No CRC trailer at all.
        let bare = dir.join("bare.txt");
        std::fs::write(&bare, "# occ-concurrent-schedule v1 scenario=two-tier\n").unwrap();
        let err =
            concurrent(&args(&["concurrent", "--replay", bare.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.exit_code(), 4, "missing trailer is a parse error");
        // Sealed but non-contiguous schedule body.
        let gap = dir.join("gap.txt");
        let body = format!(
            "{}\n5 0 0 0 0 ins\n",
            schedule_header("two-tier", 8, 2, 1, "lru", FaultPolicy::SkipAndCount)
        );
        write_atomic_with_trailer(&gap, &body).unwrap();
        let err =
            concurrent(&args(&["concurrent", "--replay", gap.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.exit_code(), 4, "seq gap is a parse error");
        assert!(err.to_string().contains("contiguous"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_policy_name_constructs() {
        let s = find_scenario("two-tier").unwrap();
        let trace = s.trace(50, 1);
        for name in [
            "convex",
            "lru",
            "fifo",
            "lfu",
            "marking",
            "lru2",
            "random",
            "greedy-dual",
            "cost-greedy",
            "belady",
            "belady-cost",
        ] {
            make_policy(name, &s.costs, &trace).unwrap();
        }
        assert!(make_policy("nope", &s.costs, &trace).is_err());
    }

    #[test]
    fn observe_writes_valid_report_and_report_renders_it() {
        let dir = std::env::temp_dir().join("occ-cli-observe-test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("report.json");
        let events_path = dir.join("events.jsonl");
        observe(&args(&[
            "observe",
            "--scenario",
            "two-tier",
            "--len",
            "800",
            "--k",
            "8",
            "--every",
            "200",
            "--out",
            report_path.to_str().unwrap(),
            "--events",
            events_path.to_str().unwrap(),
        ]))
        .unwrap();

        let text = std::fs::read_to_string(&report_path).unwrap();
        let parsed = Json::parse(&text).unwrap();
        ObserveReport::validate(&parsed).unwrap();
        let r = ObserveReport::from_json_value(&parsed).unwrap();
        assert_eq!(r.requests, 800);
        assert!(r.dual.is_some(), "convex policy must emit a dual trace");
        // The dual trajectory's final primal cost equals the report's
        // stats-derived total cost exactly (the acceptance criterion).
        let samples = r
            .dual
            .as_ref()
            .unwrap()
            .get("samples")
            .and_then(Json::as_array)
            .unwrap();
        let last_cost = samples
            .last()
            .unwrap()
            .get("primal_cost")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(Some(last_cost), r.total_cost);

        // Every event line parses; the count matches the request count
        // (no flush in observe runs).
        let events = std::fs::read_to_string(&events_path).unwrap();
        assert_eq!(events.lines().count() as u64, r.requests);
        for line in events.lines().take(50) {
            Json::parse(line).unwrap();
        }

        report(&args(&["report", "--in", report_path.to_str().unwrap()])).unwrap();
        report(&args(&[
            "report",
            "--in",
            report_path.to_str().unwrap(),
            "--format",
            "json",
        ]))
        .unwrap();
        std::fs::remove_file(report_path).ok();
        std::fs::remove_file(events_path).ok();
    }

    #[test]
    fn observe_works_for_baseline_policies() {
        observe(&args(&[
            "observe",
            "--scenario",
            "two-tier",
            "--policy",
            "lru",
            "--len",
            "300",
            "--k",
            "8",
        ]))
        .unwrap();
    }

    #[test]
    fn report_rejects_garbage() {
        let dir = std::env::temp_dir().join("occ-cli-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(
            &path,
            format!("{{\"schema\": {}}}", occ_probe::REPORT_SCHEMA),
        )
        .unwrap();
        let err = report(&args(&["report", "--in", path.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("required key"), "got: {err}");
        assert_eq!(err.exit_code(), 4, "unreadable report is a parse error");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_then_run_round_trip() {
        let dir = std::env::temp_dir().join("occ-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.occ");
        let path_s = path.to_str().unwrap();
        generate(&args(&[
            "generate",
            "--scenario",
            "two-tier",
            "--len",
            "300",
            "--out",
            path_s,
        ]))
        .unwrap();
        run(&args(&[
            "run",
            "--scenario",
            "two-tier",
            "--trace",
            path_s,
            "--policy",
            "lru",
            "--k",
            "8",
        ]))
        .unwrap();
        // A trace whose user count mismatches the scenario is rejected.
        let err = run(&args(&[
            "run",
            "--scenario",
            "sqlvm-like",
            "--trace",
            path_s,
            "--k",
            "8",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("users"));
        std::fs::remove_file(path).ok();
    }

    /// Parse an observe/resume report file back into a struct.
    fn read_report(path: &std::path::Path) -> ObserveReport {
        let text = std::fs::read_to_string(path).unwrap();
        ObserveReport::from_json(&text).unwrap()
    }

    #[test]
    fn resume_from_checkpoint_matches_uninterrupted_run() {
        for policy in ["convex", "lru"] {
            let dir = std::env::temp_dir().join(format!("occ-cli-resume-{policy}"));
            std::fs::create_dir_all(&dir).unwrap();
            let full = dir.join("full.json");
            let half = dir.join("half.json");
            let resumed = dir.join("resumed.json");
            let ckpt = dir.join("ckpt.json");

            // The uninterrupted reference run.
            observe(&args(&[
                "observe",
                "--scenario",
                "two-tier",
                "--policy",
                policy,
                "--len",
                "900",
                "--k",
                "8",
                "--out",
                full.to_str().unwrap(),
            ]))
            .unwrap();
            // The "interrupted" run: truncate the stream at 400 requests
            // and leave a checkpoint behind.
            observe(&args(&[
                "observe",
                "--scenario",
                "two-tier",
                "--policy",
                policy,
                "--len",
                "900",
                "--k",
                "8",
                "--chaos-truncate",
                "400",
                "--checkpoint",
                ckpt.to_str().unwrap(),
                "--checkpoint-every",
                "150",
                "--out",
                half.to_str().unwrap(),
            ]))
            .unwrap();
            assert_eq!(read_report(&half).requests, 400);
            // Continue over the full trace from the checkpoint.
            resume(&args(&[
                "resume",
                "--from",
                ckpt.to_str().unwrap(),
                "--scenario",
                "two-tier",
                "--policy",
                policy,
                "--len",
                "900",
                "--out",
                resumed.to_str().unwrap(),
            ]))
            .unwrap();

            let (a, b) = (read_report(&full), read_report(&resumed));
            assert_eq!(a.requests, b.requests, "{policy}");
            assert_eq!(a.hits, b.hits, "{policy}");
            assert_eq!(a.misses, b.misses, "{policy}");
            assert_eq!(a.evictions, b.evictions, "{policy}");
            assert_eq!(a.total_cost, b.total_cost, "{policy}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn resume_rejects_mismatched_invocations() {
        let dir = std::env::temp_dir().join("occ-cli-resume-reject");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("ckpt.json");
        observe(&args(&[
            "observe",
            "--scenario",
            "two-tier",
            "--len",
            "300",
            "--k",
            "8",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]))
        .unwrap();
        let c = ckpt.to_str().unwrap();

        // Wrong capacity.
        let err = resume(&args(&[
            "resume",
            "--from",
            c,
            "--scenario",
            "two-tier",
            "--len",
            "300",
            "--k",
            "9",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "got: {err}");
        // Different trace (seed) → different universe length is fine here
        // (same scenario), but a different scenario's universe is not.
        let err = resume(&args(&[
            "resume",
            "--from",
            c,
            "--scenario",
            "sqlvm-like",
            "--len",
            "300",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "got: {err}");
        // A policy without a matching snapshot name.
        let err = resume(&args(&[
            "resume",
            "--from",
            c,
            "--scenario",
            "two-tier",
            "--len",
            "300",
            "--policy",
            "lru",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "got: {err}");
        // A tampered snapshot version is a parse error. Re-seal the
        // tampered body with a fresh trailer so the version check — not
        // the checksum — is what fires.
        let text = std::fs::read_to_string(&ckpt).unwrap();
        let body = occ_probe::require_trailer(&text).unwrap();
        assert!(body.contains("\"version\":1"), "checkpoint format changed");
        let bad = dir.join("bad.json");
        std::fs::write(
            &bad,
            occ_probe::with_trailer(&body.replacen("\"version\":1", "\"version\":99", 1)),
        )
        .unwrap();
        let err = resume(&args(&[
            "resume",
            "--from",
            bad.to_str().unwrap(),
            "--scenario",
            "two-tier",
            "--len",
            "300",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "got: {err}");
        assert!(err.to_string().contains("version 99"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_truncated_checkpoints_are_rejected_with_exit_4() {
        let dir = std::env::temp_dir().join("occ-cli-ckpt-crc");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("ckpt.json");
        observe(&args(&[
            "observe",
            "--scenario",
            "two-tier",
            "--len",
            "300",
            "--k",
            "8",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&ckpt).unwrap();
        // The written checkpoint verifies and leaves no temp file.
        occ_probe::require_trailer(&text).unwrap();
        assert!(!occ_probe::atomicio::tmp_path(&ckpt).exists());

        let resume_from = |path: &std::path::Path| {
            resume(&args(&[
                "resume",
                "--from",
                path.to_str().unwrap(),
                "--scenario",
                "two-tier",
                "--len",
                "300",
            ]))
            .unwrap_err()
        };
        // A single flipped byte in the body fails the checksum.
        let mut flipped = text.clone().into_bytes();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        let bad = dir.join("flipped.json");
        std::fs::write(&bad, &flipped).unwrap();
        let err = resume_from(&bad);
        assert_eq!(err.exit_code(), 4, "got: {err}");
        assert!(
            err.to_string().contains("checksum mismatch")
                || err.to_string().contains("malformed checksum trailer"),
            "got: {err}"
        );
        // Truncation (losing the trailer) is rejected too — a partial
        // resume must never look like success.
        let cut = dir.join("truncated.json");
        std::fs::write(&cut, &text.as_bytes()[..text.len() / 2]).unwrap();
        let err = resume_from(&cut);
        assert_eq!(err.exit_code(), 4, "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vmrss_parsing_tolerates_missing_fields() {
        assert_eq!(
            parse_vmrss_kb("Name:\tocc\nVmRSS:\t  12345 kB\nVmSwap:\t0 kB\n"),
            Some(12345)
        );
        // No VmRSS line at all (the panic the heartbeat used to risk).
        assert_eq!(parse_vmrss_kb("Name:\tocc\nState:\tR (running)\n"), None);
        assert_eq!(parse_vmrss_kb(""), None);
        // Malformed value or a line with no field after the key.
        assert_eq!(parse_vmrss_kb("VmRSS:\tlots kB\n"), None);
        assert_eq!(parse_vmrss_kb("VmRSS:\n"), None);
    }

    #[test]
    fn generated_traces_land_atomically_in_both_formats() {
        let dir = std::env::temp_dir().join("occ-cli-generate-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        for format in ["text", "binary"] {
            let path = dir.join(format!("t-{format}.occ"));
            generate(&args(&[
                "generate",
                "--scenario",
                "two-tier",
                "--len",
                "200",
                "--format",
                format,
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(
                !occ_probe::atomicio::tmp_path(&path).exists(),
                "{format}: temp file must not linger"
            );
            let trace = read_trace_auto(BufReader::new(File::open(&path).unwrap())).unwrap();
            assert_eq!(trace.len(), 200, "{format}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn soak_series_is_sealed_with_a_trailer_and_no_temp_file() {
        let dir = std::env::temp_dir().join("occ-cli-soak-trailer");
        std::fs::create_dir_all(&dir).unwrap();
        let series = dir.join("s.jsonl");
        soak(&args(&[
            "soak",
            "--scenario",
            "two-tier",
            "--len",
            "4000",
            "--window",
            "1000",
            "--k",
            "8",
            "--policy",
            "lru",
            "--heartbeat",
            "off",
            "--series",
            series.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&series).unwrap();
        occ_probe::require_trailer(&text).unwrap();
        assert!(!occ_probe::atomicio::tmp_path(&series).exists());
        // The trailer-aware parser reads it back: header + 4 windows.
        let file = SeriesFile::parse(&text).unwrap();
        assert_eq!(file.windows.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Shared harness for the supervised-fleet CLI tests: run `occ
    /// fleet` with the given extra flags, writing the report to
    /// `<dir>/<name>.json`, and return it parsed on success. Failures
    /// (including degraded exits, which still write the report) come
    /// back as the error; callers re-read the file if they need it.
    fn fleet_json(dir: &std::path::Path, name: &str, extra: &[&str]) -> Result<Json, CliError> {
        let out = dir.join(format!("{name}.json"));
        let mut v = vec![
            "fleet",
            "--scenario",
            "two-tier",
            "--shards",
            "3",
            "--len",
            "6000",
            "--seed",
            "5",
            "--policy",
            "lru",
            "--window",
            "1000",
            "--format",
            "json",
            "--out",
        ];
        let out_s = out.to_str().unwrap().to_string();
        v.push(&out_s);
        v.extend_from_slice(extra);
        fleet(&args(&v))?;
        Ok(Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap())
    }

    #[test]
    fn supervised_fleet_with_chaos_matches_the_clean_run_byte_for_byte() {
        let dir = std::env::temp_dir().join("occ-cli-fleet-chaos");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let clean_series = dir.join("clean.jsonl");
        let chaos_series = dir.join("chaos.jsonl");
        let ckpts = dir.join("ckpts");

        let clean = fleet_json(
            &dir,
            "clean",
            &[
                "--supervise",
                "on",
                "--series-out",
                clean_series.to_str().unwrap(),
            ],
        )
        .unwrap();
        let chaos = fleet_json(
            &dir,
            "chaos",
            &[
                "--series-out",
                chaos_series.to_str().unwrap(),
                "--checkpoint-dir",
                ckpts.to_str().unwrap(),
                "--chaos-shard-kill",
                "0@1,1@3000,2@6000",
                "--chaos-store-fail",
                "1@1",
                "--max-restarts",
                "5",
            ],
        )
        .unwrap();

        // Same merged series bytes, trailer included.
        let a = std::fs::read(&clean_series).unwrap();
        let b = std::fs::read(&chaos_series).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "recovered series diverged from the clean one");

        // Both reports carry a supervisor section; neither is degraded;
        // the chaos run absorbed every scheduled failure.
        for (name, r) in [("clean", &clean), ("chaos", &chaos)] {
            assert!(r.get("supervisor").is_some(), "{name}");
            assert!(r.get("degraded").is_none(), "{name}");
        }
        let restarts = chaos
            .get("supervisor")
            .and_then(|s| s.get("total_restarts"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(restarts >= 4, "3 kills + 1 store fault, got {restarts}");

        // Per-shard deterministic fields agree between the runs
        // (elapsed_ms / requests_per_sec are wall-clock and excluded).
        let shards_of = |r: &Json| r.get("shards").and_then(Json::as_array).unwrap().to_vec();
        for (a, b) in shards_of(&clean).iter().zip(&shards_of(&chaos)) {
            for key in [
                "shard",
                "requests",
                "hits",
                "misses",
                "evictions",
                "misses_by_user",
            ] {
                assert_eq!(
                    a.get(key).unwrap().to_json(),
                    b.get(key).unwrap().to_json(),
                    "field {key}"
                );
            }
        }

        // The per-shard checkpoints are sealed and resumable: a fleet
        // resumed from the final checkpoints serves nothing more and
        // stays clean.
        fleet_json(&dir, "resumed", &["--from-dir", ckpts.to_str().unwrap()]).unwrap();

        // Corrupting one checkpoint byte makes --from-dir exit 4.
        let ckpt0 = occ_fleet::DirPersist::ckpt_path(&ckpts, 0);
        let mut bytes = std::fs::read(&ckpt0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&ckpt0, &bytes).unwrap();
        let err = fleet_json(&dir, "corrupt", &["--from-dir", ckpts.to_str().unwrap()])
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.exit_code(), 4, "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_fleet_restarts_exit_degraded_with_the_report_written() {
        let dir = std::env::temp_dir().join("occ-cli-fleet-degraded");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = fleet_json(
            &dir,
            "degraded",
            &["--chaos-shard-kill", "1@100,1@200", "--max-restarts", "1"],
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.exit_code(), 7, "got: {err}");
        assert_eq!(err.class(), "degraded");
        // The report was written before the exit code surfaced, with
        // the degraded section naming the quarantined shard.
        let text = std::fs::read_to_string(dir.join("degraded.json")).unwrap();
        let r = Json::parse(&text).unwrap();
        let q = r
            .get("degraded")
            .and_then(|d| d.get("quarantined"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].get("shard").and_then(Json::as_u64), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_supervision_flags_are_validated() {
        let base = |extra: &[&str]| {
            let mut v = vec![
                "fleet",
                "--scenario",
                "two-tier",
                "--shards",
                "2",
                "--len",
                "100",
            ];
            v.extend_from_slice(extra);
            args(&v)
        };
        // Supervision without a window cannot checkpoint.
        let err = fleet(&base(&["--supervise", "on"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "got: {err}");
        // --supervise off fights the chaos flags.
        let err = fleet(&base(&[
            "--supervise",
            "off",
            "--chaos-shard-kill",
            "0@1",
            "--window",
            "50",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "got: {err}");
        // Malformed and out-of-range plans.
        for bad in [
            ["--chaos-shard-kill", "0"],
            ["--chaos-shard-kill", "0@x"],
            ["--chaos-shard-kill", "7@1"],
            ["--chaos-store-fail", "0@0"],
        ] {
            let mut v = vec!["--window", "50"];
            v.extend_from_slice(&bad);
            let err = fleet(&base(&v)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
        }
    }

    #[test]
    fn chaos_observe_degrades_or_fails_per_policy() {
        let dir = std::env::temp_dir().join("occ-cli-chaos");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("report.json");
        let chaos: &[&str] = &[
            "--scenario",
            "two-tier",
            "--len",
            "600",
            "--k",
            "8",
            "--chaos-page-rate",
            "0.05",
            "--chaos-owner-rate",
            "0.05",
            "--chaos-seed",
            "42",
        ];
        let with = |extra: &[&str]| {
            let mut v = vec!["observe"];
            v.extend_from_slice(chaos);
            v.extend_from_slice(extra);
            args(&v)
        };

        // Default (fail-fast) surfaces the first fault with exit code 5.
        let err = observe(&with(&[])).unwrap_err();
        assert_eq!(err.exit_code(), 5, "got: {err}");

        // skip and quarantine absorb everything and report nonzero
        // fault counters.
        for degrade in ["skip", "quarantine"] {
            observe(&with(&[
                "--degrade",
                degrade,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            let r = read_report(&out);
            let total = r
                .metrics
                .get("faults")
                .and_then(|f| f.get("total"))
                .and_then(Json::as_u64)
                .unwrap();
            assert!(total > 0, "{degrade}: expected absorbed faults");
            report(&args(&["report", "--in", out.to_str().unwrap()])).unwrap();
        }
        // An unknown degradation policy is a usage error.
        let err = observe(&with(&["--degrade", "explode"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_resume_continues_a_degraded_run() {
        let dir = std::env::temp_dir().join("occ-cli-chaos-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("ckpt.json");
        let full = dir.join("full.json");
        let resumed = dir.join("resumed.json");
        let base: &[&str] = &[
            "--scenario",
            "two-tier",
            "--len",
            "700",
            "--k",
            "8",
            "--chaos-page-rate",
            "0.04",
            "--chaos-owner-rate",
            "0.04",
            "--chaos-seed",
            "7",
            "--degrade",
            "quarantine",
        ];
        let run = |cmd: &str, extra: &[&str]| {
            let mut v = vec![cmd];
            v.extend_from_slice(base);
            v.extend_from_slice(extra);
            args(&v)
        };

        // Reference: the whole corrupted stream in one go.
        observe(&run("observe", &["--out", full.to_str().unwrap()])).unwrap();
        // Interrupted at 300 (chaos truncation), then resumed. The plan is
        // regenerated from the same seed, so the continuation sees the
        // same corrupted records.
        observe(&run(
            "observe",
            &[
                "--chaos-truncate",
                "300",
                "--checkpoint",
                ckpt.to_str().unwrap(),
            ],
        ))
        .unwrap();
        // A degraded snapshot without --degrade is refused.
        let err = resume(&args(&[
            "resume",
            "--from",
            ckpt.to_str().unwrap(),
            "--scenario",
            "two-tier",
            "--len",
            "700",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "got: {err}");
        resume(&run(
            "resume",
            &[
                "--from",
                ckpt.to_str().unwrap(),
                "--out",
                resumed.to_str().unwrap(),
            ],
        ))
        .unwrap();

        let (a, b) = (read_report(&full), read_report(&resumed));
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.misses, b.misses);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.total_cost, b.total_cost);
        std::fs::remove_dir_all(&dir).ok();
    }
}
