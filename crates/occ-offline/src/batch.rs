//! The §4 offline batch algorithm — the cheap offline schedule used to
//! prove Theorem 1.4's lower bound.
//!
//! Instance shape (fixed by the proof): `n` users, each owning exactly
//! one page, cache size `k = n − 1`. The request sequence is split into
//! batches of `⌊(n−1)/2⌋`; at the start of each batch the algorithm picks
//! one page to be *the* missing page for the whole batch — a page not
//! requested inside the batch (there are at least `(n+1)/2` choices),
//! preferring the one evicted fewest times so far. The batch then incurs
//! at most one miss (when the previously missing page is first
//! requested), so total evictions are ≤ `T/⌊(n−1)/2⌋` and they are spread
//! nearly evenly across users — which is what makes
//! `Σ_i f_i(b_i) ≈ n·(4T/n²)^β` so small compared to any online
//! algorithm's `n·(T/n)^β`.

use occ_sim::{PageId, Trace, UserId};

/// Outcome of the batch offline schedule.
#[derive(Clone, Debug)]
pub struct BatchOfflineResult {
    /// Per-user miss (fetch) counts.
    pub misses: Vec<u64>,
    /// Per-user eviction counts.
    pub evictions: Vec<u64>,
    /// Number of batches processed.
    pub batches: usize,
}

/// Run the §4 batch offline algorithm on `trace`.
///
/// Panics unless every user owns exactly one page and `k = n − 1` — the
/// instance family of Theorem 1.4.
pub fn batch_offline(trace: &Trace, k: usize) -> BatchOfflineResult {
    let universe = trace.universe();
    let n = universe.num_users() as usize;
    assert_eq!(
        universe.num_pages() as usize,
        n,
        "lower-bound instance: one page per user"
    );
    for p in 0..n as u32 {
        assert_eq!(
            universe.owner(PageId(p)),
            UserId(p),
            "lower-bound instance: page p owned by user p"
        );
    }
    assert_eq!(k, n - 1, "lower-bound instance: cache size n − 1");
    assert!(n >= 3, "need at least 3 users");

    let batch_len = ((n - 1) / 2).max(1);
    let mut misses = vec![0u64; n];
    let mut evictions = vec![0u64; n];
    // The page currently missing from the cache (cache = all \ {missing}).
    // Initially, before anything is fetched, treat the state as "all
    // pages cached except one": we charge the first batch's transition
    // like any other (the compulsory fills are ignored, as in the proof,
    // which discards the first n−1 requests' cost).
    let mut missing: Option<u32> = None;
    let mut batches = 0;

    let requests = trace.requests();
    let mut start = 0;
    while start < requests.len() {
        let end = (start + batch_len).min(requests.len());
        let batch = &requests[start..end];
        batches += 1;

        // Pages requested in this batch.
        let mut in_batch = vec![false; n];
        for r in batch {
            in_batch[r.page.index()] = true;
        }
        // Choose the page to be missing during the batch: not requested
        // in the batch, fewest evictions so far (ties: lowest id).
        let chosen = (0..n as u32)
            .filter(|&p| !in_batch[p as usize])
            .min_by_key(|&p| (evictions[p as usize], p))
            .expect("batch shorter than n leaves an unrequested page");

        match missing {
            None => {
                // First batch: the cache is imagined as all \ {chosen};
                // the compulsory fill cost is discarded per the proof.
                missing = Some(chosen);
            }
            Some(prev) if prev == chosen => {
                // Nothing to do: zero misses this batch.
            }
            Some(prev) => {
                // If the previously missing page is requested in this
                // batch, it is fetched at its first request and `chosen`
                // is evicted. If it is not requested at all, there is no
                // miss and the missing page simply stays `prev`... unless
                // we *want* to rotate to balance evictions — rotating
                // without a request is free? No: swapping the missing
                // page requires fetching `prev`, which only happens on a
                // request. With no request to `prev`, no miss occurs and
                // the missing page remains `prev`.
                if in_batch[prev as usize] {
                    misses[prev as usize] += 1;
                    evictions[chosen as usize] += 1;
                    missing = Some(chosen);
                }
            }
        }
        start = end;
    }

    BatchOfflineResult {
        misses,
        evictions,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::Universe;

    /// Round-robin sequence over n single-page users.
    fn round_robin(n: u32, t: usize) -> Trace {
        let u = Universe::uniform(n, 1);
        let pages: Vec<u32> = (0..t).map(|i| i as u32 % n).collect();
        Trace::from_page_indices(&u, &pages)
    }

    #[test]
    fn at_most_one_miss_per_batch() {
        let n = 9;
        let trace = round_robin(n, 360);
        let r = batch_offline(&trace, (n - 1) as usize);
        let total: u64 = r.misses.iter().sum();
        assert!(
            total <= r.batches as u64,
            "{total} misses over {} batches",
            r.batches
        );
    }

    #[test]
    fn evictions_spread_evenly() {
        let n = 9;
        let trace = round_robin(n, 3600);
        let r = batch_offline(&trace, (n - 1) as usize);
        let max = *r.evictions.iter().max().unwrap();
        let total: u64 = r.evictions.iter().sum();
        // Paper's bound: max ≤ total/((n+1)/2) + 1.
        let bound = total / (n as u64).div_ceil(2) + 1;
        assert!(max <= bound, "max {max} > bound {bound}");
    }

    #[test]
    fn beats_every_request_missing() {
        // An online algorithm facing the adaptive adversary misses every
        // request; the batch offline must miss at most 1/batch_len of
        // them (asymptotically).
        let n = 11;
        let t = 1100;
        let trace = round_robin(n, t);
        let r = batch_offline(&trace, (n - 1) as usize);
        let total: u64 = r.misses.iter().sum();
        let batch_len = ((n - 1) / 2) as u64;
        assert!(total <= (t as u64) / batch_len + 1);
    }

    #[test]
    #[should_panic(expected = "one page per user")]
    fn rejects_multi_page_users() {
        let u = Universe::uniform(2, 2);
        let trace = Trace::from_page_indices(&u, &[0, 1]);
        batch_offline(&trace, 1);
    }

    #[test]
    #[should_panic(expected = "cache size n − 1")]
    fn rejects_wrong_cache_size() {
        let trace = round_robin(5, 10);
        batch_offline(&trace, 2);
    }
}
