//! Belady's MIN \[4\] — the offline algorithm that evicts the page whose
//! next request is farthest in the future.
//!
//! MIN minimizes the *total* number of misses (the aggregate, cost-blind
//! objective). Two roles in this workspace:
//!
//! * for single-user instances it *is* the optimal offline algorithm of
//!   Theorems 1.1/1.3 (one user ⇒ the objective `f(m)` is monotone in the
//!   miss count), making competitive-ratio measurements exact;
//! * for multi-user instances its per-user miss vector is the natural
//!   cost-blind offline reference (the convex-aware optimum can only
//!   shift misses between users, not reduce the total below MIN's).

use occ_sim::{EngineCtx, NextUseIndex, PageId, ReplacementPolicy, Trace};
use std::collections::BTreeSet;

/// Belady's MIN, driven by a precomputed [`NextUseIndex`].
#[derive(Debug)]
pub struct Belady {
    index: NextUseIndex,
    /// Cached pages ordered by (next use, page); the *last* entry is the
    /// victim (farthest next use, `u64::MAX` = never again).
    order: BTreeSet<(u64, u32)>,
    /// Current key per page (to remove stale entries exactly).
    key: Vec<u64>,
}

impl Belady {
    /// Build for a fixed trace (the policy must then be run on exactly
    /// that trace).
    pub fn new(trace: &Trace) -> Self {
        Belady {
            index: NextUseIndex::build(trace),
            order: BTreeSet::new(),
            key: vec![0; trace.universe().num_pages() as usize],
        }
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId, cached_before: bool) {
        if cached_before {
            self.order.remove(&(self.key[page.index()], page.0));
        }
        let next = self.index.next_request_after(page, ctx.time);
        self.key[page.index()] = next;
        self.order.insert((next, page.0));
    }
}

impl ReplacementPolicy for Belady {
    fn name(&self) -> String {
        "belady".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page, true);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page, false);
    }

    fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
        let &(key, page) = self.order.last().expect("cache is full");
        self.order.remove(&(key, page));
        PageId(page)
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.order.remove(&(self.key[page.index()], page.0));
    }

    fn reset(&mut self) {
        self.order.clear();
        self.key.iter_mut().for_each(|k| *k = 0);
    }
}

/// Convenience: run MIN over `trace` with cache size `k` and return the
/// per-user miss vector.
pub fn belady_miss_vector(trace: &Trace, k: usize) -> Vec<u64> {
    let mut policy = Belady::new(trace);
    occ_sim::Simulator::new(k)
        .run(&mut policy, trace)
        .miss_vector()
}

/// Total MIN misses on `trace` with cache size `k`.
pub fn belady_total_misses(trace: &Trace, k: usize) -> u64 {
    belady_miss_vector(trace, k).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Universe};

    #[test]
    fn textbook_example() {
        // Classic: 0 1 2 0 1 3 0 1 with k=3. MIN evicts 2 when 3 arrives
        // (2 never used again) → 4 misses total.
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0, 1, 3, 0, 1]);
        let mut b = Belady::new(&trace);
        let r = Simulator::new(3).record_events(true).run(&mut b, &trace);
        assert_eq!(r.total_misses(), 4);
        assert_eq!(r.events.unwrap().eviction_sequence(), vec![(5, PageId(2))]);
    }

    #[test]
    fn never_used_again_is_preferred_victim() {
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0, 1, 0, 1, 3]);
        // When 3 arrives at t=7, page 2 has no future use.
        let mut b = Belady::new(&trace);
        let r = Simulator::new(3).record_events(true).run(&mut b, &trace);
        assert_eq!(r.events.unwrap().eviction_sequence(), vec![(7, PageId(2))]);
    }

    #[test]
    fn beats_lru_on_cycle() {
        // The (k+1)-cycle: LRU misses everything; MIN misses T/k-ish.
        let u = Universe::single_user(4);
        let pages: Vec<u32> = (0..60).map(|i| i % 4).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let min_misses = belady_total_misses(&trace, 3);
        let lru_misses = {
            let mut lru = occ_baselines_lru_for_test::Lru::default();
            Simulator::new(3).run(&mut lru, &trace).total_misses()
        };
        assert_eq!(lru_misses, 60);
        // MIN: after the initial 3, one miss per 3 requests (evict the
        // just-used page… actually evict the farthest) → 3 + 19 = 22.
        assert!(min_misses <= 23, "MIN got {min_misses}");
        assert!(min_misses * 2 < lru_misses);
    }

    #[test]
    fn optimality_on_small_instances_vs_brute_force() {
        // Exhaustively check MIN against brute-force minimal misses on
        // every trace of length 7 over 4 pages (sampled grid), k=2.
        let u = Universe::single_user(4);
        let mut checked = 0;
        for code in (0..4u32.pow(7)).step_by(97) {
            let mut c = code;
            let pages: Vec<u32> = (0..7)
                .map(|_| {
                    let p = c % 4;
                    c /= 4;
                    p
                })
                .collect();
            let trace = Trace::from_page_indices(&u, &pages);
            let min = belady_total_misses(&trace, 2);
            let brute = brute_force_min_misses(&trace, 2);
            assert_eq!(min, brute, "trace {pages:?}");
            checked += 1;
        }
        assert!(checked > 100);
    }

    /// Minimal total misses by exhaustive search over eviction choices.
    fn brute_force_min_misses(trace: &Trace, k: usize) -> u64 {
        fn go(trace: &Trace, k: usize, t: usize, cache: &mut Vec<u32>) -> u64 {
            if t == trace.len() {
                return 0;
            }
            let p = trace.at(t as u64).page.0;
            if cache.contains(&p) {
                return go(trace, k, t + 1, cache);
            }
            if cache.len() < k {
                cache.push(p);
                let r = 1 + go(trace, k, t + 1, cache);
                cache.pop();
                return r;
            }
            let mut best = u64::MAX;
            for i in 0..cache.len() {
                let old = cache[i];
                cache[i] = p;
                best = best.min(1 + go(trace, k, t + 1, cache));
                cache[i] = old;
            }
            best
        }
        go(trace, k, 0, &mut Vec::new())
    }

    /// Local minimal LRU so this crate's tests don't depend on
    /// occ-baselines (which would create a dev-dependency cycle risk).
    mod occ_baselines_lru_for_test {
        use occ_sim::{EngineCtx, PageId, ReplacementPolicy};

        #[derive(Default)]
        pub struct Lru {
            seq: u64,
            stamp: std::collections::HashMap<u32, u64>,
        }

        impl ReplacementPolicy for Lru {
            fn name(&self) -> String {
                "test-lru".into()
            }
            fn on_hit(&mut self, _ctx: &EngineCtx, page: PageId) {
                self.seq += 1;
                self.stamp.insert(page.0, self.seq);
            }
            fn on_insert(&mut self, _ctx: &EngineCtx, page: PageId) {
                self.seq += 1;
                self.stamp.insert(page.0, self.seq);
            }
            fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
                ctx.cache
                    .iter()
                    .min_by_key(|p| self.stamp.get(&p.0).copied().unwrap_or(0))
                    .unwrap()
            }
        }
    }
}
