//! Exact offline optimum for the convex objective, by memoized search.
//!
//! The offline problem minimizes `Σ_i f_i(m_i)` over all valid eviction
//! schedules — unlike classic paging the objective is *not* the total
//! miss count, so Belady's exchange argument does not apply and the
//! per-user miss vector matters. This solver explores
//! `(time, cache set, per-user miss vector)` states with memoization;
//! it is exponential and intended for instances with roughly
//! `|P| ≤ 10, T ≤ 16`, where it provides ground truth for:
//!
//! * the competitive-ratio experiments' small-instance mode (E1), and
//! * correctness tests of every offline heuristic and of Theorem 1.1's
//!   inequality itself.

use occ_core::CostProfile;
use occ_sim::{Trace, UserId};
use std::collections::HashMap;

/// Result of the exact solver.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactOpt {
    /// Minimal achievable total cost `Σ_i f_i(b_i)`.
    pub cost: f64,
    /// A per-user miss vector `b_i` attaining it.
    pub misses: Vec<u64>,
}

/// Hard cap on explored states, to fail fast on oversized instances.
const MAX_STATES: usize = 20_000_000;

/// Compute the exact offline optimum of `Σ_i f_i(m_i)` for `trace` with
/// cache size `k`.
///
/// Panics if the instance exceeds the supported size (more than 30 pages
/// or a state-space blowup beyond the internal state cap). Use
/// [`try_exact_opt`] when an oversized instance should fall back to a
/// heuristic instead of aborting.
pub fn exact_opt(trace: &Trace, k: usize, costs: &CostProfile) -> ExactOpt {
    assert!(
        trace.universe().num_pages() <= 30,
        "exact solver supports ≤ 30 pages"
    );
    try_exact_opt(trace, k, costs, MAX_STATES)
        .unwrap_or_else(|| panic!("exact solver state space exceeded {MAX_STATES} states"))
}

/// [`exact_opt`] with an explicit state budget, returning `None` instead
/// of panicking when the instance is too large (more than 30 pages, or
/// the memoized search would explore more than `max_states` states).
///
/// The conformance harness uses this to decide per cell whether ground
/// truth is affordable, falling back to the offline heuristics otherwise.
pub fn try_exact_opt(
    trace: &Trace,
    k: usize,
    costs: &CostProfile,
    max_states: usize,
) -> Option<ExactOpt> {
    let universe = trace.universe();
    let num_pages = universe.num_pages();
    if num_pages > 30 {
        return None;
    }
    assert!(k >= 1);
    let num_users = universe.num_users() as usize;

    // Requests as (page bit, user index).
    let reqs: Vec<(u32, usize)> = trace
        .requests()
        .iter()
        .map(|r| (r.page.0, r.user.index()))
        .collect();

    // Memo: (t, cache mask, miss vector) → best completion cost given
    // misses-so-far are *not* yet charged (cost charged only at the end).
    // Because the final cost depends on absolute miss counts, the miss
    // vector must be part of the key.
    struct Ctx<'a> {
        reqs: &'a [(u32, usize)],
        k: usize,
        costs: &'a CostProfile,
        memo: HashMap<(u32, u32, Vec<u16>), f64>,
        states: usize,
        max_states: usize,
    }

    fn final_cost(costs: &CostProfile, misses: &[u16]) -> f64 {
        misses
            .iter()
            .enumerate()
            .map(|(u, &m)| costs.user(UserId(u as u32)).eval(m as f64))
            .sum()
    }

    // `None` means the state budget ran out: the whole computation is
    // abandoned, so the `misses` scratch vector's state no longer matters.
    fn go(ctx: &mut Ctx, t: usize, mask: u32, misses: &mut Vec<u16>) -> Option<f64> {
        if t == ctx.reqs.len() {
            return Some(final_cost(ctx.costs, misses));
        }
        let key = (t as u32, mask, misses.clone());
        if let Some(&v) = ctx.memo.get(&key) {
            return Some(v);
        }
        ctx.states += 1;
        if ctx.states > ctx.max_states {
            return None;
        }
        let (page, user) = ctx.reqs[t];
        let bit = 1u32 << page;
        let value = if mask & bit != 0 {
            go(ctx, t + 1, mask, misses)?
        } else {
            misses[user] += 1;
            let v = if (mask.count_ones() as usize) < ctx.k {
                go(ctx, t + 1, mask | bit, misses)
            } else {
                let mut best = f64::INFINITY;
                let mut m = mask;
                let mut found = Some(());
                while m != 0 {
                    let victim = m & m.wrapping_neg();
                    m ^= victim;
                    match go(ctx, t + 1, (mask ^ victim) | bit, misses) {
                        Some(v) if v < best => best = v,
                        Some(_) => {}
                        None => {
                            found = None;
                            break;
                        }
                    }
                }
                found.map(|()| best)
            };
            misses[user] -= 1;
            v?
        };
        ctx.memo.insert(key, value);
        Some(value)
    }

    let mut ctx = Ctx {
        reqs: &reqs,
        k,
        costs,
        memo: HashMap::new(),
        states: 0,
        max_states,
    };
    let mut misses = vec![0u16; num_users];
    let cost = go(&mut ctx, 0, 0, &mut misses)?;

    // Reconstruct one optimal miss vector by replaying greedy choices.
    let mut mask = 0u32;
    let mut mvec = vec![0u16; num_users];
    for (t, &(page, user)) in reqs.iter().enumerate() {
        let bit = 1u32 << page;
        if mask & bit != 0 {
            continue;
        }
        mvec[user] += 1;
        if (mask.count_ones() as usize) < k {
            mask |= bit;
            continue;
        }
        // Pick the victim whose completion matches the memoized optimum.
        let mut chosen = None;
        let mut best = f64::INFINITY;
        let mut m = mask;
        while m != 0 {
            let victim = m & m.wrapping_neg();
            m ^= victim;
            let v = go(&mut ctx, t + 1, (mask ^ victim) | bit, &mut mvec)?;
            if v < best {
                best = v;
                chosen = Some(victim);
            }
        }
        mask = (mask ^ chosen.expect("cache non-empty")) | bit;
    }

    Some(ExactOpt {
        cost,
        misses: mvec.iter().map(|&m| m as u64).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady::belady_total_misses;
    use occ_core::{CostFn, Linear, Monomial};
    use occ_sim::Universe;
    use std::sync::Arc;

    #[test]
    fn equals_belady_for_uniform_linear() {
        // With identical linear costs the objective is the total miss
        // count, for which MIN is provably optimal.
        let u = Universe::single_user(4);
        for seed in 0..20u32 {
            let pages: Vec<u32> = (0..10).map(|i| (i * 7 + seed) % 4).collect();
            let trace = Trace::from_page_indices(&u, &pages);
            let costs = CostProfile::uniform(1, Linear::unit());
            let opt = exact_opt(&trace, 2, &costs);
            assert_eq!(
                opt.cost as u64,
                belady_total_misses(&trace, 2),
                "trace {pages:?}"
            );
            assert_eq!(opt.misses.iter().sum::<u64>() as f64, opt.cost);
        }
    }

    #[test]
    fn convex_opt_can_beat_miss_count_opt() {
        // Two users, u0 quadratic, u1 linear-with-tiny-weight: the convex
        // optimum may take *more* total misses to spare u0.
        let u = Universe::uniform(2, 2); // u0: p0 p1; u1: p2 p3
        let costs = CostProfile::new(vec![
            Arc::new(Monomial::power(2.0)) as CostFn,
            Arc::new(Linear::new(0.1)) as CostFn,
        ]);
        // Alternate u0's two pages with u1's two pages; k=2 forces churn.
        let trace = Trace::from_page_indices(&u, &[0, 2, 1, 3, 0, 2, 1, 3, 0, 2]);
        let opt = exact_opt(&trace, 2, &costs);
        // The optimum should shift misses onto the cheap user.
        assert!(
            opt.misses[1] >= opt.misses[0],
            "expected cheap user to absorb misses, got {:?}",
            opt.misses
        );
        // And its cost must be ≤ the cost-blind MIN vector's cost.
        let blind = crate::belady::belady_miss_vector(&trace, 2);
        assert!(opt.cost <= costs.total_cost(&blind) + 1e-9);
    }

    #[test]
    fn zero_misses_when_everything_fits() {
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0, 1, 2]);
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        let opt = exact_opt(&trace, 3, &costs);
        assert_eq!(opt.misses, vec![3]); // compulsory misses only
        assert_eq!(opt.cost, 9.0);
    }

    #[test]
    fn miss_vector_is_consistent_with_cost() {
        let u = Universe::uniform(2, 2);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let trace = Trace::from_page_indices(&u, &[0, 2, 3, 1, 0, 2, 3, 1]);
        let opt = exact_opt(&trace, 2, &costs);
        assert!((costs.total_cost(&opt.misses) - opt.cost).abs() < 1e-9);
    }

    #[test]
    fn try_variant_declines_oversized_instead_of_panicking() {
        let u = Universe::uniform(2, 2);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let pages: Vec<u32> = (0..14u32).map(|i| (i * 5 + 1) % 4).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        // A starvation budget declines; a sane budget agrees with the
        // panicking front-end exactly.
        assert_eq!(try_exact_opt(&trace, 2, &costs, 3), None);
        let soft = try_exact_opt(&trace, 2, &costs, MAX_STATES).unwrap();
        let hard = exact_opt(&trace, 2, &costs);
        assert_eq!(soft, hard);
        // Too many pages is also a decline, not a panic.
        let wide = Universe::single_user(31);
        let t31 = Trace::from_page_indices(&wide, &[0, 30, 7]);
        let costs1 = CostProfile::uniform(1, Monomial::power(2.0));
        assert_eq!(try_exact_opt(&t31, 2, &costs1, MAX_STATES), None);
    }

    #[test]
    fn opt_lower_bounds_any_online_policy() {
        use occ_core::ConvexCaching;
        use occ_sim::Simulator;
        let u = Universe::uniform(2, 2);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        for seed in 0..12u32 {
            let pages: Vec<u32> = (0..12).map(|i| (i * 5 + seed) % 4).collect();
            let trace = Trace::from_page_indices(&u, &pages);
            let opt = exact_opt(&trace, 2, &costs);
            let mut alg = ConvexCaching::new(costs.clone());
            let online = Simulator::new(2).run(&mut alg, &trace);
            let online_cost = costs.total_cost(&online.miss_vector());
            assert!(
                online_cost + 1e-9 >= opt.cost,
                "online {online_cost} below OPT {} on {pages:?}",
                opt.cost
            );
        }
    }
}
