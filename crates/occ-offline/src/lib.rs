#![warn(missing_docs)]
//! Offline algorithms and optimality references.
//!
//! Everything the competitive-ratio experiments compare against:
//!
//! * [`Belady`] — classic MIN \[4\], exact for the aggregate miss count
//!   (and exact for the paper's objective in the single-user case);
//! * [`CostAwareBelady`] — a scalable offline heuristic for the convex
//!   objective (upper bound on OPT);
//! * [`exact_opt`] — the exact convex-objective optimum by memoized
//!   search, for small instances (ground truth in tests and E1);
//! * [`batch_offline`] — the §4 batch schedule that certifies Theorem
//!   1.4's lower bound.

pub mod batch;
pub mod belady;
pub mod belady_cost;
pub mod exact;

pub use batch::{batch_offline, BatchOfflineResult};
pub use belady::{belady_miss_vector, belady_total_misses, Belady};
pub use belady_cost::{cost_belady_miss_vector, CostAwareBelady};
pub use exact::{exact_opt, try_exact_opt, ExactOpt};

use occ_core::CostProfile;
use occ_sim::Trace;

/// The tightest offline *upper bound* on OPT's cost that scales to large
/// traces: the better of cost-blind MIN and the cost-aware heuristic.
///
/// Returns `(cost, miss_vector)` of the better schedule. Since both are
/// valid offline schedules, the true OPT cost is ≤ the returned cost.
pub fn best_offline_heuristic(trace: &Trace, k: usize, costs: &CostProfile) -> (f64, Vec<u64>) {
    let blind = belady_miss_vector(trace, k);
    let aware = cost_belady_miss_vector(trace, k, costs);
    let cb = costs.total_cost(&blind);
    let ca = costs.total_cost(&aware);
    if ca <= cb {
        (ca, aware)
    } else {
        (cb, blind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_core::Monomial;
    use occ_sim::Universe;

    #[test]
    fn best_heuristic_upper_bounds_exact_opt() {
        let u = Universe::uniform(2, 2);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        for seed in 0..10u32 {
            let pages: Vec<u32> = (0..12).map(|i| (i * 7 + seed) % 4).collect();
            let trace = Trace::from_page_indices(&u, &pages);
            let (heur_cost, heur_misses) = best_offline_heuristic(&trace, 2, &costs);
            let opt = exact_opt(&trace, 2, &costs);
            assert!(
                heur_cost + 1e-9 >= opt.cost,
                "heuristic {heur_cost} below OPT {} on {pages:?}",
                opt.cost
            );
            assert!((costs.total_cost(&heur_misses) - heur_cost).abs() < 1e-9);
        }
    }
}
