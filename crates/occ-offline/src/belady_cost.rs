//! Cost-aware Belady — an offline *heuristic* for the convex objective.
//!
//! Exact offline optimization of `Σ_i f_i(m_i)` is exponential in general
//! (see [`crate::exact`] for the small-instance solver). This heuristic
//! scales to long traces: evict the page with the smallest
//! *cost-urgency*, `Δf_u(m_u) / (next_use − t)` — the marginal cost its
//! owner would pay at the page's next request, discounted by how far away
//! that request is. A page never requested again has urgency 0 and is
//! always preferred; with uniform linear costs the rule degenerates to
//! classic MIN (constant numerator ⇒ farthest next use wins).
//!
//! Its cost is an *upper bound* on OPT; experiments report
//! `min(belady-cost, other offline references)` when estimating
//! competitive ratios.

use occ_core::{CostProfile, Marginals};
use occ_sim::{EngineCtx, NextUseIndex, PageId, ReplacementPolicy, Trace};

/// Offline cost-aware eviction heuristic.
#[derive(Debug)]
pub struct CostAwareBelady {
    index: NextUseIndex,
    costs: CostProfile,
    mode: Marginals,
}

impl CostAwareBelady {
    /// Build for a fixed trace and cost profile.
    pub fn new(trace: &Trace, costs: CostProfile) -> Self {
        CostAwareBelady {
            index: NextUseIndex::build(trace),
            costs,
            mode: Marginals::Discrete,
        }
    }

    /// Use analytic-derivative marginals instead of discrete ones.
    pub fn with_marginals(mut self, mode: Marginals) -> Self {
        self.mode = mode;
        self
    }
}

impl ReplacementPolicy for CostAwareBelady {
    fn name(&self) -> String {
        "belady-cost".into()
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        let t = ctx.time;
        let mut best: Option<(f64, u64, u32)> = None; // (urgency, -dist order via next, page)
        for q in ctx.cache.iter() {
            let next = self.index.next_request_after(q, t);
            let user = ctx.universe.owner(q);
            let m = ctx.stats.per_user()[user.index()].evictions;
            let urgency = if next == occ_sim::nextuse::NEVER {
                0.0
            } else {
                let marginal = self.costs.next_eviction_cost(self.mode, user, m);
                marginal / (next - t) as f64
            };
            // Lower urgency wins; ties: farther next use wins, then page.
            let better = match best {
                None => true,
                Some((bu, bn, bp)) => {
                    urgency < bu || (urgency == bu && (next > bn || (next == bn && q.0 < bp)))
                }
            };
            if better {
                best = Some((urgency, next, q.0));
            }
        }
        PageId(best.expect("cache is full").2)
    }
}

/// Convenience: run the heuristic and return the per-user miss vector.
pub fn cost_belady_miss_vector(trace: &Trace, k: usize, costs: &CostProfile) -> Vec<u64> {
    let mut policy = CostAwareBelady::new(trace, costs.clone());
    occ_sim::Simulator::new(k)
        .run(&mut policy, trace)
        .miss_vector()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady::{belady_miss_vector, belady_total_misses};
    use occ_core::{CostFn, Linear, Monomial};
    use occ_sim::{Simulator, Universe};
    use std::sync::Arc;

    #[test]
    fn uniform_linear_reduces_to_min() {
        let u = Universe::single_user(5);
        let pages: Vec<u32> = (0..200u32).map(|i| (i * 7 + 3) % 5).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let costs = CostProfile::uniform(1, Linear::unit());
        let heur: u64 = cost_belady_miss_vector(&trace, 3, &costs).iter().sum();
        assert_eq!(heur, belady_total_misses(&trace, 3));
    }

    #[test]
    fn shifts_misses_away_from_expensive_user() {
        // u0 quadratic, u1 linear; symmetric access pattern. The heuristic
        // should give u0 fewer misses than cost-blind MIN does.
        let u = Universe::uniform(2, 3);
        let mut pages = Vec::new();
        for i in 0..60u32 {
            pages.push(i % 3);
            pages.push(3 + (i % 3));
        }
        let trace = Trace::from_page_indices(&u, &pages);
        let costs = CostProfile::new(vec![
            Arc::new(Monomial::power(2.0)) as CostFn,
            Arc::new(Linear::unit()) as CostFn,
        ]);
        let blind = belady_miss_vector(&trace, 3);
        let aware = cost_belady_miss_vector(&trace, 3, &costs);
        let cost_blind = costs.total_cost(&blind);
        let cost_aware = costs.total_cost(&aware);
        assert!(
            cost_aware <= cost_blind,
            "cost-aware {cost_aware} should not exceed cost-blind {cost_blind}"
        );
    }

    #[test]
    fn never_again_pages_evicted_first() {
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0, 1, 3, 0, 1]);
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        let mut p = CostAwareBelady::new(&trace, costs);
        let r = Simulator::new(3).record_events(true).run(&mut p, &trace);
        // Page 2 is dead after t=2 → it is the victim when 3 arrives.
        assert_eq!(r.events.unwrap().eviction_sequence(), vec![(5, PageId(2))]);
    }
}
