//! Facade crate: re-exports the whole workspace. See README.md.
pub use occ_analysis as analysis;
pub use occ_baselines as baselines;
pub use occ_core as core;
pub use occ_offline as offline;
pub use occ_pools as pools;
pub use occ_probe as probe;
pub use occ_sim as sim;
pub use occ_workloads as workloads;
