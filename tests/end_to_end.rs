//! Cross-crate integration tests: workloads → engine → algorithms →
//! offline references → theory checks, exercised together the way the
//! experiment binaries use them.

use occ_analysis::{check_theorem_1_1, check_theorem_1_3, compare_policies, evaluate_policy};
use occ_baselines::{standard_suite, Lru};
use occ_core::{ConvexCaching, CostProfile, Monomial};
use occ_offline::{batch_offline, belady_miss_vector, best_offline_heuristic};
use occ_sim::{ReplacementPolicy, Simulator};
use occ_workloads::{
    all_scenarios, cycle_trace, run_lower_bound, sqlvm_like, two_tier, zipf_trace,
};

#[test]
fn theorem_1_1_holds_on_single_user_workloads() {
    // Single user ⇒ Belady is the exact offline optimum.
    for beta in [1.0, 2.0, 3.0] {
        for k in [4usize, 8, 16] {
            for trace in [
                cycle_trace(k as u32 + 1, 5_000),
                zipf_trace(3 * k as u32, 5_000, 0.9, 5),
            ] {
                let costs = CostProfile::uniform(1, Monomial::power(beta));
                let mut alg = ConvexCaching::new(costs.clone());
                let a = Simulator::new(k).run(&mut alg, &trace).miss_vector();
                let b = belady_miss_vector(&trace, k);
                let check = check_theorem_1_1(&costs, &a, &b, beta, k);
                assert!(
                    check.satisfied,
                    "Theorem 1.1 violated at beta={beta}, k={k}: online {} > rhs {}",
                    check.online_cost, check.rhs
                );
            }
        }
    }
}

#[test]
fn theorem_1_3_holds_for_all_h() {
    let k = 10usize;
    let beta = 2.0;
    let trace = cycle_trace(k as u32 + 1, 8_000);
    let costs = CostProfile::uniform(1, Monomial::power(beta));
    let mut alg = ConvexCaching::new(costs.clone());
    let a = Simulator::new(k).run(&mut alg, &trace).miss_vector();
    for h in 1..=k {
        let b = belady_miss_vector(&trace, h);
        let check = check_theorem_1_3(&costs, &a, &b, beta, k, h);
        assert!(check.satisfied, "Theorem 1.3 violated at h={h}");
    }
}

#[test]
fn lower_bound_ratio_grows_with_n() {
    let beta = 2.0;
    let mut prev_ratio = 0.0;
    for n in [5u32, 9, 17] {
        let t = (n as u64).pow(2) * 6;
        let costs = CostProfile::uniform(n, Monomial::power(beta));
        let mut alg = ConvexCaching::new(costs.clone());
        let (online, trace) = run_lower_bound(&mut alg, n, t);
        let offline = batch_offline(&trace, (n - 1) as usize);
        let ratio = costs.total_cost(&online.miss_vector()) / costs.total_cost(&offline.misses);
        assert!(
            ratio > prev_ratio,
            "ratio must grow with n: {ratio} after {prev_ratio}"
        );
        prev_ratio = ratio;
    }
    // At n = 17, k = 16: the ratio has left any small-constant regime.
    assert!(prev_ratio > 10.0);
}

#[test]
fn cost_awareness_beats_cost_blind_on_two_tier() {
    let s = two_tier();
    let trace = s.trace(30_000, 9);
    let mut ours = ConvexCaching::new(s.costs.clone());
    let ours_report = evaluate_policy(&mut ours, &trace, s.suggested_k, &s.costs);
    let mut lru = Lru::new();
    let lru_report = evaluate_policy(&mut lru, &trace, s.suggested_k, &s.costs);
    assert!(
        ours_report.cost * 2.0 < lru_report.cost,
        "expected ≥2x improvement: ours {} vs lru {}",
        ours_report.cost,
        lru_report.cost
    );
}

#[test]
fn every_scenario_runs_the_full_suite() {
    for s in all_scenarios() {
        let trace = s.trace(5_000, 3);
        let mut suite = standard_suite(&s.costs);
        let reports = compare_policies(&mut suite, &trace, s.suggested_k, &s.costs);
        assert_eq!(reports.len(), 8);
        for r in &reports {
            assert_eq!(r.steps, 5_000, "{}: wrong step count", r.name);
            assert!(r.cost.is_finite());
        }
    }
}

#[test]
fn offline_heuristic_never_beats_online_impossibly() {
    // best_offline_heuristic is a valid schedule: its cost must be within
    // the theorem bound of the online cost in the *other* direction —
    // i.e. online ≥ nothing, but offline ≤ online is NOT guaranteed
    // pointwise... what must hold: offline heuristic cost ≤ cost of the
    // online schedule itself (the online run is also a valid offline
    // schedule, and Belady minimizes aggregate misses among schedules).
    let s = sqlvm_like();
    let trace = s.trace(10_000, 21);
    let k = s.suggested_k;
    let (heur_cost, _) = best_offline_heuristic(&trace, k, &s.costs);
    let mut ours = ConvexCaching::new(s.costs.clone());
    let online = Simulator::new(k).run(&mut ours, &trace);
    let online_blind_misses: u64 = online.miss_vector().iter().sum();
    let belady_misses: u64 = belady_miss_vector(&trace, k).iter().sum();
    assert!(
        belady_misses <= online_blind_misses,
        "MIN minimizes aggregate misses over every schedule"
    );
    assert!(heur_cost.is_finite() && heur_cost > 0.0);
}

#[test]
fn policies_are_deterministic_across_runs() {
    let s = two_tier();
    let trace = s.trace(4_000, 13);
    for mut policy in standard_suite(&s.costs) {
        let a = {
            policy.reset();
            Simulator::new(16).run(&mut policy, &trace).miss_vector()
        };
        policy.reset();
        let b = Simulator::new(16).run(&mut policy, &trace).miss_vector();
        assert_eq!(a, b, "{} not deterministic", policy.name());
    }
}
