//! Stress/soak test: 4 worker threads with seeded `ChaosSource` fault
//! injection against one shared cache.
//!
//! Three contracts:
//! * the run's merged fault counters equal the exact sum of the
//!   per-thread counters (no fault lost or double-counted across the
//!   lock-striped engine's thread lanes);
//! * under the quarantine-user policy, the single-threaded replay of
//!   the commit schedule quarantines **the same users** and reproduces
//!   every per-user vector;
//! * the same holds at soak length under skip-and-count.

use occ_baselines::Lru;
use occ_sim::concurrent::{replay_schedule, run_shared, verify_replay, ConcurrentEngine};
use occ_sim::probe::NoopRecorder;
use occ_sim::{FaultCounters, FaultPolicy, ReplacementPolicy, RequestSource};
use occ_workloads::{all_scenarios, ChaosSource, FaultPlan};

type SharedPolicy = Box<dyn ReplacementPolicy + Send>;

const THREADS: usize = 4;
const TABLE_SHARDS: usize = 8;

fn lru_policies() -> Vec<SharedPolicy> {
    (0..TABLE_SHARDS)
        .map(|_| -> SharedPolicy { Box::new(Lru::new()) })
        .collect()
}

/// Run THREADS chaos-wrapped scenario streams of `len` requests each
/// under `degrade`, then replay and cross-check everything.
fn chaos_run(len: u64, degrade: FaultPolicy, page_rate: f64, owner_rate: f64) {
    let scenarios = all_scenarios();
    let scenario = &scenarios[0];
    let mut sources: Vec<_> = (0..THREADS)
        .map(|t| {
            let plan = FaultPlan::seeded(0xC4A05 ^ (t as u64) << 17)
                .with_page_rate(page_rate)
                .with_owner_rate(owner_rate);
            ChaosSource::new(scenario.stream(len, 7 + t as u64), plan)
        })
        .collect();
    let universe = sources[0].universe().clone();
    let k = scenario.suggested_k;
    let engine = ConcurrentEngine::new(k, universe.clone(), degrade, lru_policies());
    let mut recorders = vec![NoopRecorder; THREADS];
    let outcome = run_shared(&engine, &mut sources, &mut recorders)
        .expect("skip/quarantine degradation never faults the run");

    // Chaos actually fired — otherwise this test exercises nothing.
    let injected: u64 = sources.iter().map(|s| s.injected().total()).sum();
    assert!(injected > 0, "the seeded plans must inject faults");

    // Merged counters are the exact sum of the per-thread lanes.
    assert_eq!(outcome.per_thread.len(), THREADS);
    let mut summed = FaultCounters::default();
    for (_, c) in &outcome.per_thread {
        summed.merge(c);
    }
    assert_eq!(
        summed, outcome.counters,
        "merged fault counters must equal the per-thread sum exactly"
    );
    // Same for the per-user stats vectors.
    let mut misses = vec![0u64; universe.num_users() as usize];
    for (stats, _) in &outcome.per_thread {
        for (u, s) in stats.per_user().iter().enumerate() {
            misses[u] += s.misses;
        }
    }
    assert_eq!(misses, outcome.stats.miss_vector());

    // Replay: identical vectors, identical counters, identical
    // quarantine set (order included — both are ascending by user id).
    let replayed = replay_schedule(k, universe, lru_policies(), degrade, &outcome.schedule)
        .expect("recorded schedule must replay");
    verify_replay(&outcome, &replayed).expect("replay must be identical");
    assert_eq!(
        outcome.quarantined, replayed.quarantined,
        "replay must quarantine exactly the users the concurrent run did"
    );
    if degrade == FaultPolicy::QuarantineUser && outcome.counters.owner_mismatch > 0 {
        assert!(
            !outcome.quarantined.is_empty(),
            "owner mismatches under quarantine-user must quarantine someone"
        );
    }
}

#[test]
fn quarantine_chaos_stress_matches_replay() {
    chaos_run(5_000, FaultPolicy::QuarantineUser, 0.002, 0.003);
}

#[test]
fn skip_and_count_chaos_soak_matches_replay() {
    chaos_run(25_000, FaultPolicy::SkipAndCount, 0.001, 0.001);
}

#[test]
fn truncated_streams_still_balance() {
    let scenarios = all_scenarios();
    let scenario = &scenarios[1];
    let mut sources: Vec<_> = (0..THREADS)
        .map(|t| {
            // Thread t's stream is cut off after 100*t records — thread 0
            // is cut to nothing, so 100*(1+2+3) commits survive — uneven worker exits must not unbalance
            // the commit schedule.
            let plan = FaultPlan::seeded(11 + t as u64).with_truncate_at(100 * t);
            ChaosSource::new(scenario.stream(2_000, 3 + t as u64), plan)
        })
        .collect();
    let universe = sources[0].universe().clone();
    let k = scenario.suggested_k;
    let engine = ConcurrentEngine::new(
        k,
        universe.clone(),
        FaultPolicy::SkipAndCount,
        lru_policies(),
    );
    let mut recorders = vec![NoopRecorder; THREADS];
    let outcome = run_shared(&engine, &mut sources, &mut recorders).expect("clean run");
    assert_eq!(outcome.schedule.len(), 100 * (1 + 2 + 3));
    let replayed = replay_schedule(
        k,
        universe,
        lru_policies(),
        FaultPolicy::SkipAndCount,
        &outcome.schedule,
    )
    .expect("schedule must replay");
    verify_replay(&outcome, &replayed).expect("replay must be identical");
}
