//! Integration tests for the zero-materialization workload path: the
//! binary trace format and the streaming request sources.
//!
//! * arbitrary traces survive a binary write → read round trip
//!   byte-identically, and the text and binary loaders agree through
//!   the auto-detecting reader;
//! * streamed workloads replay byte-identically to their materialized
//!   twins through the batched engine;
//! * a 10-million-request streamed run completes with source state
//!   whose size is provably independent of the workload length — the
//!   memory claim behind "no `Vec<Request>` ever exists".

use occ_baselines::Lru;
use occ_sim::{
    read_trace, read_trace_auto, read_trace_binary, write_trace, write_trace_binary, PageId,
    Simulator, Trace, TraceBuilder, Universe, DEFAULT_BATCH_SIZE,
};
use occ_workloads::{zipf_trace, AccessPattern, PatternSource, TenantMixSource, TenantSpec};
use proptest::prelude::*;
use std::io::Cursor;

/// An arbitrary multi-user trace (including empty request streams).
fn arb_trace() -> impl Strategy<Value = Trace> {
    (1u32..=4, 2u32..=6).prop_flat_map(|(users, per_user)| {
        let total = users * per_user;
        proptest::collection::vec(0..total, 0..300).prop_map(move |pages| {
            let universe = Universe::uniform(users, per_user);
            let mut builder = TraceBuilder::new(universe.clone());
            for &p in &pages {
                builder.push(PageId(p));
            }
            builder.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_round_trip_is_lossless(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_trace_binary(&trace, &mut buf).unwrap();
        let back = read_trace_binary(Cursor::new(&buf)).unwrap();
        prop_assert_eq!(back.universe(), trace.universe());
        prop_assert_eq!(back.requests(), trace.requests());
    }

    #[test]
    fn text_and_binary_loaders_agree_via_auto_detection(trace in arb_trace()) {
        let mut text = Vec::new();
        write_trace(&trace, &mut text).unwrap();
        let mut binary = Vec::new();
        write_trace_binary(&trace, &mut binary).unwrap();

        let from_text = read_trace_auto(Cursor::new(&text)).unwrap();
        let from_binary = read_trace_auto(Cursor::new(&binary)).unwrap();
        prop_assert_eq!(from_text.universe(), from_binary.universe());
        prop_assert_eq!(from_text.requests(), from_binary.requests());
        prop_assert_eq!(from_text.requests(), trace.requests());

        // The explicit text reader sees the same thing the auto reader saw.
        let explicit = read_trace(Cursor::new(&text)).unwrap();
        prop_assert_eq!(explicit.requests(), trace.requests());
    }
}

#[test]
fn streamed_replay_matches_materialized_replay() {
    let trace = zipf_trace(128, 30_000, 0.9, 21);
    let materialized = Simulator::new(16).run(&mut Lru::new(), &trace);

    let mut source = PatternSource::new(AccessPattern::Zipf { s: 0.9 }, 128, 30_000, 21);
    let streamed = Simulator::new(16).run_source_batched(&mut Lru::new(), &mut source, 4096);

    assert_eq!(streamed.stats, materialized.stats);
    assert_eq!(streamed.steps, materialized.steps);
    assert_eq!(streamed.final_cache, materialized.final_cache);
}

#[test]
fn ten_million_request_stream_runs_in_constant_memory() {
    const LEN: u64 = 10_000_000;
    let pattern = AccessPattern::ZipfAliased { s: 0.9 };

    // The O(1)-memory claim: the source's heap state is a function of
    // the universe and sampler tables only. A 10M-request source and a
    // 100-request source are the same size; a materialized trace would
    // be ~8 bytes per request (80 MB here).
    let mut long = PatternSource::new(pattern.clone(), 1024, LEN, 3);
    let short = PatternSource::new(pattern, 1024, 100, 3);
    assert_eq!(long.state_bytes(), short.state_bytes());
    assert!(
        long.state_bytes() < 64 * 1024,
        "source state is {} bytes; the materialized trace would be ~{} MB",
        long.state_bytes(),
        LEN * 8 / (1 << 20)
    );

    let result =
        Simulator::new(64).run_source_batched(&mut Lru::new(), &mut long, DEFAULT_BATCH_SIZE);
    assert_eq!(result.steps, LEN);
    assert_eq!(result.stats.total_hits() + result.stats.total_misses(), LEN);
    assert!(result.stats.total_misses() > 0);
}

#[test]
fn multi_tenant_stream_state_is_length_independent() {
    let specs = vec![
        TenantSpec::new(256, 3.0, AccessPattern::ZipfAliased { s: 1.0 }),
        TenantSpec::new(128, 1.0, AccessPattern::Uniform),
    ];
    let long = TenantMixSource::new(&specs, u64::MAX, 9);
    let short = TenantMixSource::new(&specs, 1, 9);
    assert_eq!(long.state_bytes(), short.state_bytes());
}
