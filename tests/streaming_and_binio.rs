//! Integration tests for the zero-materialization workload path: the
//! binary trace format and the streaming request sources.
//!
//! * arbitrary traces survive a binary write → read round trip
//!   byte-identically, and the text and binary loaders agree through
//!   the auto-detecting reader;
//! * streamed workloads replay byte-identically to their materialized
//!   twins through the batched engine;
//! * a 10-million-request streamed run completes with source state
//!   whose size is provably independent of the workload length — the
//!   memory claim behind "no `Vec<Request>` ever exists".

use occ_baselines::Lru;
use occ_sim::{
    read_trace, read_trace_auto, read_trace_binary, read_trace_binary_v2, write_trace,
    write_trace_binary, write_trace_binary_v2, BinaryTraceReader, MmapTraceSource, PageId,
    RequestSource, Simulator, SteppingEngine, Trace, TraceBuilder, Universe, DEFAULT_BATCH_SIZE,
};
use occ_workloads::{zipf_trace, AccessPattern, PatternSource, TenantMixSource, TenantSpec};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An arbitrary multi-user trace (including empty request streams).
fn arb_trace() -> impl Strategy<Value = Trace> {
    (1u32..=4, 2u32..=6).prop_flat_map(|(users, per_user)| {
        let total = users * per_user;
        proptest::collection::vec(0..total, 0..300).prop_map(move |pages| {
            let universe = Universe::uniform(users, per_user);
            let mut builder = TraceBuilder::new(universe.clone());
            for &p in &pages {
                builder.push(PageId(p));
            }
            builder.build()
        })
    })
}

/// A single-tenant trace over a wide page universe, so consecutive page
/// ids can jump by ~2^17 in either direction. This drives occbin02 into
/// its multi-byte zigzag-varint paths, which the small universe of
/// [`arb_trace`] never reaches.
fn arb_wide_trace() -> impl Strategy<Value = Trace> {
    const SPAN: u32 = 1 << 17;
    proptest::collection::vec(0..SPAN, 0..64).prop_map(|pages| {
        let universe = Universe::single_user(SPAN);
        let mut builder = TraceBuilder::new(universe);
        for &p in &pages {
            builder.push(PageId(p));
        }
        builder.build()
    })
}

/// Write `trace` as occbin01 to a fresh temp file and return its path.
/// Callers must remove the file; a process-wide counter keeps concurrent
/// proptest cases from colliding.
fn write_v1_temp_file(trace: &Trace) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "occ-test-mmap-eq-{}-{}.occbin01",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut bytes = Vec::new();
    write_trace_binary(trace, &mut bytes).unwrap();
    std::fs::write(&path, bytes).unwrap();
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_round_trip_is_lossless(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_trace_binary(&trace, &mut buf).unwrap();
        let back = read_trace_binary(Cursor::new(&buf)).unwrap();
        prop_assert_eq!(back.universe(), trace.universe());
        prop_assert_eq!(back.requests(), trace.requests());
    }

    #[test]
    fn text_and_binary_loaders_agree_via_auto_detection(trace in arb_trace()) {
        let mut text = Vec::new();
        write_trace(&trace, &mut text).unwrap();
        let mut binary = Vec::new();
        write_trace_binary(&trace, &mut binary).unwrap();

        let from_text = read_trace_auto(Cursor::new(&text)).unwrap();
        let from_binary = read_trace_auto(Cursor::new(&binary)).unwrap();
        prop_assert_eq!(from_text.universe(), from_binary.universe());
        prop_assert_eq!(from_text.requests(), from_binary.requests());
        prop_assert_eq!(from_text.requests(), trace.requests());

        // The explicit text reader sees the same thing the auto reader saw.
        let explicit = read_trace(Cursor::new(&text)).unwrap();
        prop_assert_eq!(explicit.requests(), trace.requests());
    }

    #[test]
    fn binary_v2_round_trip_is_lossless(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_trace_binary_v2(&trace, &mut buf).unwrap();
        let back = read_trace_binary_v2(Cursor::new(&buf)).unwrap();
        prop_assert_eq!(back.universe(), trace.universe());
        prop_assert_eq!(back.requests(), trace.requests());

        // The auto-detecting reader sniffs the occbin02 magic too.
        let auto = read_trace_auto(Cursor::new(&buf)).unwrap();
        prop_assert_eq!(auto.requests(), trace.requests());
    }

    #[test]
    fn v1_to_v2_transcode_is_lossless(trace in arb_trace()) {
        // The `occ trace pack` path at the library level: occbin01 bytes
        // → Trace → occbin02 bytes → Trace → occbin01 bytes. Both decoded
        // traces and both v1 encodings must be identical.
        let mut v1 = Vec::new();
        write_trace_binary(&trace, &mut v1).unwrap();
        let from_v1 = read_trace_binary(Cursor::new(&v1)).unwrap();

        let mut v2 = Vec::new();
        write_trace_binary_v2(&from_v1, &mut v2).unwrap();
        let from_v2 = read_trace_binary_v2(Cursor::new(&v2)).unwrap();
        prop_assert_eq!(from_v2.universe(), from_v1.universe());
        prop_assert_eq!(from_v2.requests(), from_v1.requests());

        let mut v1_again = Vec::new();
        write_trace_binary(&from_v2, &mut v1_again).unwrap();
        prop_assert_eq!(v1_again, v1);
    }

    #[test]
    fn binary_v2_survives_wide_deltas(trace in arb_wide_trace()) {
        let mut buf = Vec::new();
        write_trace_binary_v2(&trace, &mut buf).unwrap();
        let back = read_trace_binary_v2(Cursor::new(&buf)).unwrap();
        prop_assert_eq!(back.requests(), trace.requests());
    }

    #[test]
    fn mmap_and_buffered_replays_are_byte_identical(
        trace in arb_trace(),
        batch in prop_oneof![
            Just(DEFAULT_BATCH_SIZE - 1),
            Just(DEFAULT_BATCH_SIZE),
            Just(DEFAULT_BATCH_SIZE + 1),
            1usize..128,
        ],
    ) {
        let path = write_v1_temp_file(&trace);

        // Drain both sources into explicit page sequences, and replay
        // each through its own engine; the straddle cases around
        // DEFAULT_BATCH_SIZE exercise run splits at the mmap serve
        // boundary.
        let mut mmap = MmapTraceSource::open(&path).unwrap();
        let mut mmap_pages = Vec::new();
        let mut mmap_engine = SteppingEngine::new(8, mmap.universe().clone(), Lru::new());
        while let Some(run) = mmap.next_page_run(batch) {
            mmap_pages.extend_from_slice(run);
            mmap_engine.step_page_batch(run);
        }
        mmap.finish().unwrap();

        let file = std::fs::File::open(&path).unwrap();
        let mut buffered = BinaryTraceReader::new(std::io::BufReader::new(file)).unwrap();
        let mut buf_pages = Vec::new();
        let mut buf_engine = SteppingEngine::new(8, buffered.universe().clone(), Lru::new());
        while let Some(run) = buffered.next_run(batch) {
            buf_pages.extend(run.iter().map(|r| r.page));
            buf_engine.step_batch(run);
        }
        buffered.finish().unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(&mmap_pages, &buf_pages);
        prop_assert_eq!(
            mmap_pages,
            trace.requests().iter().map(|r| r.page).collect::<Vec<_>>()
        );
        prop_assert_eq!(mmap_engine.stats(), buf_engine.stats());
    }
}

#[test]
fn streamed_replay_matches_materialized_replay() {
    let trace = zipf_trace(128, 30_000, 0.9, 21);
    let materialized = Simulator::new(16).run(&mut Lru::new(), &trace);

    let mut source = PatternSource::new(AccessPattern::Zipf { s: 0.9 }, 128, 30_000, 21);
    let streamed = Simulator::new(16).run_source_batched(&mut Lru::new(), &mut source, 4096);

    assert_eq!(streamed.stats, materialized.stats);
    assert_eq!(streamed.steps, materialized.steps);
    assert_eq!(streamed.final_cache, materialized.final_cache);
}

#[test]
fn ten_million_request_stream_runs_in_constant_memory() {
    const LEN: u64 = 10_000_000;
    let pattern = AccessPattern::ZipfAliased { s: 0.9 };

    // The O(1)-memory claim: the source's heap state is a function of
    // the universe and sampler tables only. A 10M-request source and a
    // 100-request source are the same size; a materialized trace would
    // be ~8 bytes per request (80 MB here).
    let mut long = PatternSource::new(pattern.clone(), 1024, LEN, 3);
    let short = PatternSource::new(pattern, 1024, 100, 3);
    assert_eq!(long.state_bytes(), short.state_bytes());
    assert!(
        long.state_bytes() < 64 * 1024,
        "source state is {} bytes; the materialized trace would be ~{} MB",
        long.state_bytes(),
        LEN * 8 / (1 << 20)
    );

    let result =
        Simulator::new(64).run_source_batched(&mut Lru::new(), &mut long, DEFAULT_BATCH_SIZE);
    assert_eq!(result.steps, LEN);
    assert_eq!(result.stats.total_hits() + result.stats.total_misses(), LEN);
    assert!(result.stats.total_misses() > 0);
}

/// A fixed-width trace served from a FIFO — a non-regular file that
/// cannot be mapped — must fall back to buffered reads and still replay
/// the identical request stream. `BinarySource::open` sniffs and reads
/// through a single file handle, so no bytes are lost to probing.
#[cfg(unix)]
#[test]
fn non_regular_file_falls_back_to_buffered_strategy() {
    use occ_sim::BinarySource;

    let trace = zipf_trace(64, 5_000, 0.9, 7);
    let mut bytes = Vec::new();
    write_trace_binary(&trace, &mut bytes).unwrap();

    let fifo = std::env::temp_dir().join(format!("occ-test-fifo-{}.occbin01", std::process::id()));
    std::fs::remove_file(&fifo).ok();
    let status = std::process::Command::new("mkfifo")
        .arg(&fifo)
        .status()
        .expect("mkfifo");
    assert!(status.success(), "mkfifo failed");

    let writer_path = fifo.clone();
    let writer = std::thread::spawn(move || {
        // Blocks until the reader opens the other end.
        std::fs::write(&writer_path, &bytes).unwrap();
    });

    let mut source = BinarySource::open(&fifo).unwrap();
    assert_eq!(source.strategy(), "buffered", "a FIFO cannot be mapped");
    let mut pages = Vec::new();
    loop {
        if let Some(run) = source.next_page_run(DEFAULT_BATCH_SIZE) {
            pages.extend_from_slice(run);
            continue;
        }
        if let Some(run) = source.next_run(DEFAULT_BATCH_SIZE) {
            pages.extend(run.iter().map(|r| r.page));
            continue;
        }
        break;
    }
    source.finish().unwrap();
    writer.join().unwrap();
    std::fs::remove_file(&fifo).ok();

    let expected: Vec<PageId> = trace.requests().iter().map(|r| r.page).collect();
    assert_eq!(pages, expected);
}

#[test]
fn multi_tenant_stream_state_is_length_independent() {
    let specs = vec![
        TenantSpec::new(256, 3.0, AccessPattern::ZipfAliased { s: 1.0 }),
        TenantSpec::new(128, 1.0, AccessPattern::Uniform),
    ];
    let long = TenantMixSource::new(&specs, u64::MAX, 9);
    let short = TenantMixSource::new(&specs, 1, 9);
    assert_eq!(long.state_bytes(), short.state_bytes());
}
