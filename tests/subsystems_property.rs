//! Property tests over the supporting subsystems: trace serialization,
//! miss-ratio curves, windowed costs, the weighted-caching degeneration,
//! and the multi-pool system.

use occ_analysis::{epoch_costs, lru_mrc};
use occ_baselines::{GreedyDual, Lru, RandomizedMarking};
use occ_core::{ConvexCaching, CostFn, CostProfile, Linear, Monomial};
use occ_pools::{run_pools, PoolsConfig, StaticAssigner};
use occ_sim::{read_trace, write_trace, ReplacementPolicy, Simulator, Trace, Universe};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_trace() -> impl Strategy<Value = Trace> {
    (1u32..=3, 1u32..=4).prop_flat_map(|(users, pages_per)| {
        let total = users * pages_per;
        proptest::collection::vec(0..total, 1..150).prop_map(move |pages| {
            Trace::from_page_indices(&Universe::uniform(users, pages_per), &pages)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn textio_round_trips_any_trace(trace in arb_trace()) {
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back.requests(), trace.requests());
        prop_assert_eq!(back.universe(), trace.universe());
    }

    #[test]
    fn mrc_equals_direct_lru_at_every_size(trace in arb_trace()) {
        let max_k = trace.universe().num_pages() as usize;
        let mrc = lru_mrc(&trace, max_k);
        for k in 1..=max_k {
            let direct = Simulator::new(k).run(&mut Lru::new(), &trace);
            prop_assert_eq!(mrc.miss_vector(k), direct.miss_vector(), "k={}", k);
        }
    }

    #[test]
    fn windowed_cost_never_exceeds_total_cost(
        trace in arb_trace(),
        epoch_len in 1u64..50,
    ) {
        let n = trace.universe().num_users();
        let costs = CostProfile::uniform(n, Monomial::power(2.0));
        let k = (trace.universe().num_pages() as usize / 2).max(1);
        let ec = epoch_costs(Lru::new(), &trace, k, &costs, epoch_len);
        prop_assert!(ec.windowed_total() <= ec.unwindowed_total(&costs) + 1e-9);
        // Per-epoch misses partition the totals.
        let mut sums = vec![0u64; n as usize];
        for e in &ec.epoch_misses {
            for (u, &m) in e.iter().enumerate() {
                sums[u] += m;
            }
        }
        prop_assert_eq!(sums, ec.total_misses);
    }

    #[test]
    fn greedy_dual_degenerates_from_convex_caching(
        trace in arb_trace(),
        weights_raw in proptest::collection::vec(1u32..=9, 3),
        k in 1usize..=6,
    ) {
        // Linear costs ⇒ the paper's algorithm IS weighted caching.
        let n = trace.universe().num_users() as usize;
        let weights: Vec<f64> = weights_raw[..n.min(3)]
            .iter()
            .chain(std::iter::repeat_n(&1, n.saturating_sub(3)))
            .map(|&w| w as f64)
            .collect();
        let k = k.min(trace.universe().num_pages().max(2) as usize - 1).max(1);
        let costs = CostProfile::new(
            weights.iter().map(|&w| Arc::new(Linear::new(w)) as CostFn).collect(),
        );
        let ev = |p: &mut dyn ReplacementPolicy| {
            Simulator::new(k)
                .record_events(true)
                .run(&mut &mut *p, &trace)
                .events
                .unwrap()
                .eviction_sequence()
        };
        let mut ours = ConvexCaching::new(costs);
        let mut gd = GreedyDual::new(weights);
        prop_assert_eq!(ev(&mut ours), ev(&mut gd));
    }

    #[test]
    fn single_pool_system_equals_flat_simulation(trace in arb_trace()) {
        let k = (trace.universe().num_pages() as usize).max(2) / 2 + 1;
        let n = trace.universe().num_users();
        let costs = CostProfile::uniform(n, Monomial::power(2.0));
        let pooled = run_pools(
            &trace,
            PoolsConfig::uniform(1, k, 0.0),
            &costs,
            &mut StaticAssigner,
            64,
            |_| Box::new(Lru::new()),
        );
        let flat = Simulator::new(k).run(&mut Lru::new(), &trace);
        prop_assert_eq!(pooled.misses, flat.miss_vector());
        prop_assert_eq!(pooled.migrations, 0);
    }

    #[test]
    fn randomized_marking_is_valid_and_reproducible(
        trace in arb_trace(),
        seed in 0u64..1000,
        k in 1usize..=5,
    ) {
        let k = k.min(trace.universe().num_pages().max(2) as usize - 1).max(1);
        // Validity is enforced by the engine (victim must be cached);
        // reproducibility by the seeded RNG + reset.
        let mut p = RandomizedMarking::new(seed);
        let a = Simulator::new(k).run(&mut p, &trace).miss_vector();
        p.reset();
        let b = Simulator::new(k).run(&mut p, &trace).miss_vector();
        prop_assert_eq!(a, b);
    }
}
