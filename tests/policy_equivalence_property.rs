//! Property tests pinning the optimized hot-path policies to their
//! retained reference implementations.
//!
//! Every `*Reference` twin is the original straightforward data
//! structure (`BTreeSet`, `VecDeque`, per-eviction scans); the defaults
//! run on intrusive recency lists, dense swap-remove pools, and flat
//! history rings. For the deterministic policies the eviction sequences
//! must be **byte-identical** on arbitrary traces and cache sizes.
//! ALG-DISCRETE is additionally pinned on its *slow* path: a non-convex
//! cost profile disables the intrusive-list fast path and must still
//! reproduce the literal Figure 3 sweeps decision-for-decision.

use occ_baselines::{
    Fifo, FifoReference, GreedyDual, GreedyDualReference, Lru, LruK, LruKReference, LruReference,
    Marking, MarkingReference, RandomizedMarking,
};
use occ_core::{
    ConvexCaching, CostFn, CostProfile, DiscreteReference, Linear, Marginals, Monomial,
    ThresholdCost,
};
use occ_sim::{ReplacementPolicy, Simulator, Trace, Universe};
use proptest::prelude::*;
use std::sync::Arc;

/// A random single-user instance: page sequence, universe size, cache
/// size (always smaller than the universe so evictions happen).
fn arb_paging_instance() -> impl Strategy<Value = (Universe, Vec<u32>, usize)> {
    (4u32..=12).prop_flat_map(|total| {
        (
            proptest::collection::vec(0..total, 30..300),
            1..=(total as usize - 1),
        )
            .prop_map(move |(pages, k)| (Universe::single_user(total), pages, k))
    })
}

fn evictions<P: ReplacementPolicy>(p: &mut P, trace: &Trace, k: usize) -> Vec<(u64, u32)> {
    Simulator::new(k)
        .record_events(true)
        .run(p, trace)
        .events
        .unwrap()
        .eviction_sequence()
        .iter()
        .map(|&(t, pg)| (t, pg.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_matches_reference((universe, pages, k) in arb_paging_instance()) {
        let trace = Trace::from_page_indices(&universe, &pages);
        prop_assert_eq!(
            evictions(&mut Lru::new(), &trace, k),
            evictions(&mut LruReference::new(), &trace, k)
        );
    }

    #[test]
    fn fifo_matches_reference((universe, pages, k) in arb_paging_instance()) {
        let trace = Trace::from_page_indices(&universe, &pages);
        prop_assert_eq!(
            evictions(&mut Fifo::new(), &trace, k),
            evictions(&mut FifoReference::new(), &trace, k)
        );
    }

    #[test]
    fn marking_matches_reference((universe, pages, k) in arb_paging_instance()) {
        let trace = Trace::from_page_indices(&universe, &pages);
        prop_assert_eq!(
            evictions(&mut Marking::new(), &trace, k),
            evictions(&mut MarkingReference::new(), &trace, k)
        );
    }

    #[test]
    fn lruk_matches_reference(
        (universe, pages, k) in arb_paging_instance(),
        depth in 1usize..=4,
    ) {
        let trace = Trace::from_page_indices(&universe, &pages);
        prop_assert_eq!(
            evictions(&mut LruK::new(depth), &trace, k),
            evictions(&mut LruKReference::new(depth), &trace, k)
        );
    }

    #[test]
    fn greedy_dual_matches_reference(
        (users, pages_per) in (2u32..=4, 2u32..=4),
        raw_weights in proptest::collection::vec(0.01f64..100.0, 4),
        page_seed in proptest::collection::vec(0u32..16, 30..300),
        k in 2usize..=10,
    ) {
        // The flat-array Landlord (per-user recency lists, lazy
        // `w_u + offset` keys) against the ordered-set reference:
        // byte-identical eviction sequences for arbitrary positive
        // weights, where key sums exercise float rounding.
        let total = users * pages_per;
        let universe = Universe::uniform(users, pages_per);
        let pages: Vec<u32> = page_seed.iter().map(|p| p % total).collect();
        let weights: Vec<f64> = raw_weights[..users as usize].to_vec();
        let k = k.min(total as usize - 1);
        let trace = Trace::from_page_indices(&universe, &pages);
        prop_assert_eq!(
            evictions(&mut GreedyDual::new(weights.clone()), &trace, k),
            evictions(&mut GreedyDualReference::new(weights), &trace, k)
        );
    }

    #[test]
    fn rand_marking_reproducible_and_valid(
        (universe, pages, k) in arb_paging_instance(),
        seed in 0u64..1000,
    ) {
        // The randomized policy is pinned behaviorally (the pool layout
        // differs from the reference, so byte-identity is not defined):
        // the engine asserts every victim is cached, and equal seeds must
        // reproduce the run exactly.
        let trace = Trace::from_page_indices(&universe, &pages);
        let a = evictions(&mut RandomizedMarking::new(seed), &trace, k);
        let b = evictions(&mut RandomizedMarking::new(seed), &trace, k);
        prop_assert_eq!(a, b);
    }
}

/// Integer-parameter costs, including a non-convex threshold function,
/// keep all budget arithmetic exact so the slow path can be required to
/// match the reference bit-for-bit.
fn arb_cost_with_nonconvex() -> impl Strategy<Value = CostFn> {
    prop_oneof![
        (1u32..=5).prop_map(|w| Arc::new(Linear::new(w as f64)) as CostFn),
        (2u32..=3).prop_map(|b| Arc::new(Monomial::power(b as f64)) as CostFn),
        ((1u32..=3), (1u64..=6), (2u32..=12)).prop_map(|(s, th, j)| {
            Arc::new(ThresholdCost::new(s as f64, th, j as f64)) as CostFn
        }),
    ]
}

fn arb_multiuser_instance() -> impl Strategy<Value = (Universe, Vec<u32>, CostProfile, usize)> {
    (2u32..=3, 2u32..=4).prop_flat_map(|(users, pages_per)| {
        let total = users * pages_per;
        (
            proptest::collection::vec(0..total, 30..250),
            proptest::collection::vec(arb_cost_with_nonconvex(), users as usize),
            2..=((total - 1).max(2) as usize),
        )
            .prop_map(move |(pages, fns, k)| {
                (
                    Universe::uniform(users, pages_per),
                    pages,
                    CostProfile::new(fns),
                    k.min(total as usize - 1),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alg_discrete_matches_figure3_on_both_paths(
        (universe, pages, costs, k) in arb_multiuser_instance()
    ) {
        // Depending on the drawn profile this exercises the intrusive-list
        // fast path (all functions convex) or the BTreeSet fallback (a
        // ThresholdCost present). Discrete marginals make the threshold
        // function meaningful.
        let trace = Trace::from_page_indices(&universe, &pages);
        let mut fast = ConvexCaching::new(costs.clone()).with_marginals(Marginals::Discrete);
        prop_assert_eq!(fast.uses_fast_path(), costs.all_convex());
        let mut reference = DiscreteReference::new(costs).with_marginals(Marginals::Discrete);
        prop_assert_eq!(
            evictions(&mut fast, &trace, k),
            evictions(&mut reference, &trace, k)
        );
    }

    #[test]
    fn alg_discrete_slow_path_matches_figure3(
        (universe, pages, _unused, k) in arb_multiuser_instance(),
        slope in 1u32..=3,
        threshold in 1u64..=6,
        jump in 2u32..=12,
    ) {
        // Force the slow path: at least one user always gets the
        // non-convex threshold cost.
        let users = universe.num_users();
        let mut fns: Vec<CostFn> = vec![Arc::new(ThresholdCost::new(
            slope as f64,
            threshold,
            jump as f64,
        )) as CostFn];
        for u in 1..users {
            fns.push(Arc::new(Linear::new(u as f64)) as CostFn);
        }
        let costs = CostProfile::new(fns);
        prop_assert!(!costs.all_convex());
        let trace = Trace::from_page_indices(&universe, &pages);
        let mut slow = ConvexCaching::new(costs.clone()).with_marginals(Marginals::Discrete);
        prop_assert!(!slow.uses_fast_path());
        let mut reference = DiscreteReference::new(costs).with_marginals(Marginals::Discrete);
        prop_assert_eq!(
            evictions(&mut slow, &trace, k),
            evictions(&mut reference, &trace, k)
        );
    }
}
