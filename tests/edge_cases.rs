//! Degenerate-instance sweep: every shipping policy through
//! [`SteppingEngine::step`] *and* [`SteppingEngine::step_checked`] on the
//! boundary cases a grid sweep never hits — a one-slot cache (`k = 1`), a
//! one-page universe (`n = 1`), the empty trace, and a single endlessly
//! repeated page. Policies differ in *which* page they evict, but on
//! these instances there is no choice to make, so hit/miss behaviour is
//! fully determined and must be identical across all eleven policies —
//! and identical between the trusting and the checked step paths.

use occ_baselines::{CostGreedy, Fifo, GreedyDual, Lfu, Lru, LruK, Marking, RandomEvict};
use occ_core::{ConvexCaching, CostProfile, Monomial};
use occ_offline::{Belady, CostAwareBelady};
use occ_sim::{
    FaultHandler, FaultPolicy, ReplacementPolicy, StepOutcome, SteppingEngine, Trace, Universe,
    UserId,
};

/// The full shipping-policy roster, as spelled in `occ run --policy …`.
const POLICIES: &[&str] = &[
    "convex",
    "lru",
    "fifo",
    "lfu",
    "marking",
    "lru2",
    "random",
    "greedy-dual",
    "cost-greedy",
    "belady",
    "belady-cost",
];

/// Build a fresh policy instance by CLI name (mirrors `occ`'s factory so
/// the sweep covers exactly what ships).
fn build(name: &str, trace: &Trace, costs: &CostProfile) -> Box<dyn ReplacementPolicy> {
    let weights: Vec<f64> = (0..costs.num_users())
        .map(|u| costs.user(UserId(u)).eval(1.0).max(1e-9))
        .collect();
    match name {
        "convex" => Box::new(ConvexCaching::new(costs.clone())),
        "lru" => Box::new(Lru::new()),
        "fifo" => Box::new(Fifo::new()),
        "lfu" => Box::new(Lfu::new()),
        "marking" => Box::new(Marking::new()),
        "lru2" => Box::new(LruK::new(2)),
        "random" => Box::new(RandomEvict::new(0xC0FFEE)),
        "greedy-dual" => Box::new(GreedyDual::new(weights)),
        "cost-greedy" => Box::new(CostGreedy::new(costs.clone())),
        "belady" => Box::new(Belady::new(trace)),
        "belady-cost" => Box::new(CostAwareBelady::new(trace, costs.clone())),
        other => panic!("unknown policy '{other}'"),
    }
}

/// Drive `trace` through a fresh engine twice — once via the trusting
/// `step`, once via `step_checked` under fail-fast — and assert the two
/// paths agree step for step before returning the outcomes and the final
/// per-user miss vector.
fn run_both(
    name: &str,
    universe: &Universe,
    trace: &Trace,
    costs: &CostProfile,
    k: usize,
) -> (Vec<StepOutcome>, Vec<u64>) {
    let mut plain = SteppingEngine::new(k, universe.clone(), build(name, trace, costs));
    let mut checked = SteppingEngine::new(k, universe.clone(), build(name, trace, costs));
    let mut handler = FaultHandler::new(FaultPolicy::FailFast, universe.num_users());
    let mut outcomes = Vec::with_capacity(trace.len());
    for (_, req) in trace.iter() {
        let a = plain.step(req);
        let b = checked
            .step_checked(req, &mut handler)
            .unwrap_or_else(|e| panic!("{name}: well-formed request faulted: {e}"))
            .unwrap_or_else(|| panic!("{name}: well-formed request dropped"));
        assert_eq!(a, b, "{name}: step and step_checked disagree");
        outcomes.push(a);
    }
    let served = plain.stats().total_hits() + plain.stats().total_misses();
    assert_eq!(served, trace.len() as u64);
    assert_eq!(plain.stats().miss_vector(), checked.stats().miss_vector());
    let misses = plain.stats().miss_vector();
    (outcomes, misses)
}

#[test]
fn empty_trace_is_a_noop_for_every_policy() {
    let universe = Universe::uniform(2, 2);
    let trace = Trace::from_page_indices(&universe, &[]);
    let costs = CostProfile::uniform(2, Monomial::power(2.0));
    assert!(trace.is_empty());
    for name in POLICIES {
        let (outcomes, misses) = run_both(name, &universe, &trace, &costs, 3);
        assert!(outcomes.is_empty(), "{name}: no requests, no outcomes");
        assert_eq!(misses, vec![0, 0], "{name}: no requests, no misses");
    }
}

#[test]
fn one_page_universe_misses_once_then_always_hits() {
    // n = 1 page, k = 1 slot, one user asking for the same page forever:
    // the only possible schedule is one compulsory miss followed by hits.
    let universe = Universe::single_user(1);
    let trace = Trace::from_page_indices(&universe, &[0; 8]);
    let costs = CostProfile::uniform(1, Monomial::power(2.0));
    for name in POLICIES {
        let (outcomes, misses) = run_both(name, &universe, &trace, &costs, 1);
        assert_eq!(outcomes[0], StepOutcome::Inserted, "{name}");
        assert!(
            outcomes[1..].iter().all(|o| *o == StepOutcome::Hit),
            "{name}: repeats of a cached page must hit: {outcomes:?}"
        );
        assert_eq!(misses, vec![1], "{name}");
    }
}

#[test]
fn single_repeated_page_hits_even_in_a_crowded_universe() {
    // Many pages exist, but the trace only ever touches one of them: the
    // eviction policy is irrelevant because nothing else enters the cache.
    let universe = Universe::uniform(2, 3);
    let trace = Trace::from_page_indices(&universe, &[4; 10]);
    let costs = CostProfile::uniform(2, Monomial::power(2.0));
    for name in POLICIES {
        let (outcomes, misses) = run_both(name, &universe, &trace, &costs, 2);
        assert_eq!(outcomes[0], StepOutcome::Inserted, "{name}");
        assert!(
            outcomes[1..].iter().all(|o| *o == StepOutcome::Hit),
            "{name}"
        );
        // Page 4 belongs to the second user (pages 0–2 to user 0, 3–5 to
        // user 1), so exactly that user's miss counter moves.
        assert_eq!(misses, vec![0, 1], "{name}");
    }
}

#[test]
fn capacity_one_cache_leaves_no_eviction_choice() {
    // k = 1: the cache holds a single page, so every policy produces the
    // same fully determined outcome sequence.
    let universe = Universe::single_user(3);
    let costs = CostProfile::uniform(1, Monomial::power(2.0));

    // Distinct pages back to back: everything misses, and from the second
    // request on every fetch evicts the previous page.
    let cycle = Trace::from_page_indices(&universe, &[0, 1, 2, 0, 1, 2]);
    for name in POLICIES {
        let (outcomes, misses) = run_both(name, &universe, &cycle, &costs, 1);
        assert_eq!(misses, vec![6], "{name}: one slot, all distinct ⇒ all miss");
        assert_eq!(outcomes[0], StepOutcome::Inserted, "{name}");
        assert!(
            outcomes[1..]
                .iter()
                .all(|o| matches!(o, StepOutcome::Evicted(_))),
            "{name}: a full one-slot cache must evict on every miss: {outcomes:?}"
        );
    }

    // Paired repeats: the second of each pair hits, the rest miss.
    let pairs = Trace::from_page_indices(&universe, &[0, 0, 1, 1, 2, 2]);
    for name in POLICIES {
        let (outcomes, misses) = run_both(name, &universe, &pairs, &costs, 1);
        assert_eq!(misses, vec![3], "{name}");
        let expect = [
            StepOutcome::Inserted,
            StepOutcome::Hit,
            StepOutcome::Evicted(occ_sim::PageId(0)),
            StepOutcome::Hit,
            StepOutcome::Evicted(occ_sim::PageId(1)),
            StepOutcome::Hit,
        ];
        assert_eq!(outcomes, expect, "{name}");
    }
}

#[test]
fn single_user_universe_runs_every_policy_clean() {
    // n = 1 *user* (the degenerate multi-tenant instance): a small page
    // set with reuse, checked through both step paths. Policies may pick
    // different victims here, so only per-policy internal consistency and
    // the miss-vector shape are asserted.
    let universe = Universe::single_user(4);
    let trace = Trace::from_page_indices(&universe, &[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
    let costs = CostProfile::uniform(1, Monomial::power(2.0));
    for name in POLICIES {
        let (outcomes, misses) = run_both(name, &universe, &trace, &costs, 2);
        assert_eq!(misses.len(), 1, "{name}: one user, one counter");
        let observed: u64 = outcomes
            .iter()
            .filter(|o| !matches!(o, StepOutcome::Hit))
            .count() as u64;
        assert_eq!(misses[0], observed, "{name}: stats agree with outcomes");
        // The first two distinct requests fill the empty cache; the cold
        // start is identical for everyone.
        assert_eq!(outcomes[0], StepOutcome::Inserted, "{name}");
        assert_eq!(outcomes[1], StepOutcome::Inserted, "{name}");
        assert!(misses[0] >= 4, "{name}: 4 distinct pages through k=2");
    }
}
