//! Property tests pinning the batched replay paths to their scalar
//! twins.
//!
//! `SteppingEngine::step` is the reference semantics; `step_batch` /
//! `run_batched` are the monomorphized chunk loops the throughput
//! baseline rides on. For every shipping policy, on arbitrary
//! multi-user traces, batch sizes (including trailing partial batches),
//! and cache sizes, the batched replay must be **byte-identical**:
//! same stats, same event log, same final cache, same engine snapshot.
//! The checked variant must additionally reproduce the scalar
//! `step_checked` loop's fault counters and quarantine sets on corrupt
//! request streams.

use occ_baselines::{
    Fifo, FifoReference, GreedyDual, Lru, LruK, LruKReference, LruReference, Marking,
    RandomizedMarking,
};
use occ_core::{ConvexCaching, CostProfile, Monomial};
use occ_sim::{
    FaultHandler, FaultPolicy, PageId, ReplacementPolicy, Request, SimEvent, SteppingEngine,
    Universe, UserId,
};
use proptest::prelude::*;

fn policy_suite(num_users: u32) -> Vec<Box<dyn ReplacementPolicy>> {
    let costs = CostProfile::uniform(num_users, Monomial::power(2.0));
    vec![
        Box::new(Lru::new()),
        Box::new(LruReference::new()),
        Box::new(Fifo::new()),
        Box::new(FifoReference::new()),
        Box::new(Marking::new()),
        Box::new(LruK::new(2)),
        Box::new(LruKReference::new(2)),
        Box::new(RandomizedMarking::new(7)),
        Box::new(ConvexCaching::new(costs)),
    ]
}

/// A random multi-user instance plus a batch size that exercises
/// trailing partial batches.
fn arb_instance() -> impl Strategy<Value = (Universe, Vec<u32>, usize, usize)> {
    (1u32..=3, 3u32..=6).prop_flat_map(|(users, per_user)| {
        let total = users * per_user;
        (
            proptest::collection::vec(0..total, 20..200),
            1..=(total as usize - 1),
            1usize..=40,
        )
            .prop_map(move |(pages, k, batch)| {
                (Universe::uniform(users, per_user), pages, k, batch)
            })
    })
}

type Outcome = (
    occ_sim::SimStats,
    occ_sim::Time,
    Vec<PageId>,
    Vec<SimEvent>,
    Option<occ_sim::EngineSnapshot>,
);

fn finish<P: ReplacementPolicy>(mut engine: SteppingEngine<P>) -> Outcome {
    // Some policies may not support snapshotting; compare whatever both
    // paths produce (both must then be None).
    let snap = engine.snapshot().ok();
    (
        engine.stats().clone(),
        engine.time(),
        engine.cache().sorted_pages(),
        engine
            .take_events()
            .map(|log| log.iter().copied().collect())
            .unwrap_or_default(),
        snap,
    )
}

fn run_scalar(
    policy: &mut Box<dyn ReplacementPolicy>,
    universe: &Universe,
    requests: &[Request],
    k: usize,
) -> Outcome {
    let mut engine = SteppingEngine::new(k, universe.clone(), &mut **policy).with_events();
    for &r in requests {
        engine.step(r);
    }
    finish(engine)
}

fn run_batched(
    policy: &mut Box<dyn ReplacementPolicy>,
    universe: &Universe,
    requests: &[Request],
    k: usize,
    batch: usize,
) -> Outcome {
    let mut engine = SteppingEngine::new(k, universe.clone(), &mut **policy).with_events();
    engine.run_batched(requests, batch);
    finish(engine)
}

/// Same, without the event log — this is the configuration where
/// `step_batch` actually takes the `serve_batch` fast path rather than
/// falling back to scalar, so it pins the fast path itself.
fn run_fast(
    policy: &mut Box<dyn ReplacementPolicy>,
    universe: &Universe,
    requests: &[Request],
    k: usize,
    batch: usize,
    batched: bool,
) -> Outcome {
    let mut engine = SteppingEngine::new(k, universe.clone(), &mut **policy);
    if batched {
        engine.run_batched(requests, batch);
    } else {
        for &r in requests {
            engine.step(r);
        }
    }
    finish(engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_replay_is_byte_identical_for_every_policy(
        (universe, pages, k, batch) in arb_instance()
    ) {
        let requests: Vec<Request> =
            pages.iter().map(|&p| universe.request(PageId(p))).collect();
        for mut policy in policy_suite(universe.num_users()) {
            let scalar = run_scalar(&mut policy, &universe, &requests, k);
            policy.reset();
            let batched = run_batched(&mut policy, &universe, &requests, k, batch);
            prop_assert_eq!(&scalar, &batched, "policy {} diverged", policy.name());

            // The unrecorded fast path (serve_batch) must agree too.
            policy.reset();
            let fast_scalar = run_fast(&mut policy, &universe, &requests, k, batch, false);
            policy.reset();
            let fast_batched = run_fast(&mut policy, &universe, &requests, k, batch, true);
            prop_assert_eq!(
                &fast_scalar, &fast_batched,
                "policy {} fast path diverged", policy.name()
            );
            prop_assert_eq!(&scalar.0, &fast_scalar.0, "events must not change stats");
        }
    }
}

/// The four policies the throughput grid measures in batched mode —
/// the ones whose `step_batch` boundary behaviour the bench numbers
/// actually depend on.
fn batched_grid_suite(num_users: u32) -> Vec<Box<dyn ReplacementPolicy>> {
    let costs = CostProfile::uniform(num_users, Monomial::power(2.0));
    vec![
        Box::new(Lru::new()),
        Box::new(Fifo::new()),
        Box::new(ConvexCaching::new(costs)),
        Box::new(GreedyDual::unweighted(num_users)),
    ]
}

/// Replay through explicit `step_batch` calls of a fixed batch size —
/// the exact call pattern the fleet runner and the bench grid use.
fn run_step_batch(
    policy: &mut Box<dyn ReplacementPolicy>,
    universe: &Universe,
    requests: &[Request],
    k: usize,
    batch: usize,
) -> Outcome {
    let mut engine = SteppingEngine::new(k, universe.clone(), &mut **policy);
    for chunk in requests.chunks(batch) {
        engine.step_batch(chunk);
    }
    finish(engine)
}

/// A random instance whose batch size is drawn from the boundary set
/// {1, 2, 4095, 4096, 4097, trace_len}. Traces are mostly shorter than
/// the default batch, so the large sizes exercise the
/// trace-shorter-than-one-batch case; the deterministic test below
/// covers traces that cross the 4096 boundary several times.
fn arb_boundary_instance() -> impl Strategy<Value = (Universe, Vec<u32>, usize, usize)> {
    (2u32..=3, 20u32..=60).prop_flat_map(|(users, per_user)| {
        let total = users * per_user;
        (
            proptest::collection::vec(0..total, 1..800),
            1..=(total as usize - 1),
            0usize..6,
        )
            .prop_map(move |(pages, k, batch_idx)| {
                (Universe::uniform(users, per_user), pages, k, batch_idx)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn step_batch_boundary_sizes_are_byte_identical(
        (universe, pages, k, batch_idx) in arb_boundary_instance()
    ) {
        let requests: Vec<Request> =
            pages.iter().map(|&p| universe.request(PageId(p))).collect();
        let batch = [1, 2, 4095, 4096, 4097, requests.len()][batch_idx];
        for mut policy in batched_grid_suite(universe.num_users()) {
            let scalar = run_fast(&mut policy, &universe, &requests, k, batch, false);
            policy.reset();
            let batched = run_step_batch(&mut policy, &universe, &requests, k, batch);
            prop_assert_eq!(
                &scalar, &batched,
                "policy {} diverged at batch size {}", policy.name(), batch
            );
        }
    }
}

/// Deterministic requests from a splitmix-style generator, so the long
/// boundary test below needs no proptest shrink budget.
fn lcg_requests(universe: &Universe, total_pages: u32, len: usize, mut s: u64) -> Vec<Request> {
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            universe.request(PageId(((s >> 33) as u32) % total_pages))
        })
        .collect()
}

/// A 13k-request trace crosses the default 4096-request batch three
/// times, and the sizes one either side of it shift every subsequent
/// chunk boundary by one; `trace_len` runs the whole trace as a single
/// batch, and the short trace never fills one.
#[test]
fn step_batch_boundary_sizes_match_scalar_on_long_traces() {
    let (users, per_user) = (3u32, 50u32);
    let universe = Universe::uniform(users, per_user);
    let long = lcg_requests(&universe, users * per_user, 13_000, 0xB5);
    let short = lcg_requests(&universe, users * per_user, 57, 0x5B);
    for (requests, label) in [(&long, "long"), (&short, "short")] {
        let k = 96;
        for mut policy in batched_grid_suite(users) {
            let scalar = run_fast(&mut policy, &universe, requests, k, 1, false);
            for batch in [1, 2, 4095, 4096, 4097, requests.len()] {
                policy.reset();
                let batched = run_step_batch(&mut policy, &universe, requests, k, batch);
                assert_eq!(
                    scalar,
                    batched,
                    "policy {} diverged on the {label} trace at batch size {batch}",
                    policy.name()
                );
            }
        }
    }
}

/// A request stream with seeded corruption: out-of-universe pages and
/// wrong-owner records sprinkled through valid requests.
fn arb_faulty_stream() -> impl Strategy<Value = (Universe, Vec<Request>, usize, usize)> {
    (2u32..=3, 3u32..=5).prop_flat_map(|(users, per_user)| {
        let total = users * per_user;
        (
            proptest::collection::vec((0u32..total + 4, 0u32..users), 20..150),
            1..=(total as usize - 1),
            1usize..=33,
        )
            .prop_map(move |(raw, k, batch)| {
                let universe = Universe::uniform(users, per_user);
                let requests: Vec<Request> = raw
                    .iter()
                    .map(|&(p, u)| Request {
                        page: PageId(p),
                        user: UserId(u),
                    })
                    .collect();
                (universe, requests, k, batch)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_checked_replay_matches_scalar_on_corrupt_streams(
        (universe, requests, k, batch) in arb_faulty_stream()
    ) {
        for fault_policy in [FaultPolicy::SkipAndCount, FaultPolicy::QuarantineUser] {
            let mut scalar_policy = Lru::new();
            let mut scalar_handler = FaultHandler::new(fault_policy, universe.num_users());
            let mut scalar =
                SteppingEngine::new(k, universe.clone(), &mut scalar_policy);
            for &r in &requests {
                scalar.step_checked(r, &mut scalar_handler).unwrap();
            }

            let mut batched_policy = Lru::new();
            let mut batched_handler = FaultHandler::new(fault_policy, universe.num_users());
            let mut batched =
                SteppingEngine::new(k, universe.clone(), &mut batched_policy);
            batched
                .run_batched_checked(&requests, batch, &mut batched_handler)
                .unwrap();

            prop_assert_eq!(scalar_handler.counters(), batched_handler.counters());
            prop_assert_eq!(
                scalar_handler.quarantined_users(),
                batched_handler.quarantined_users()
            );
            prop_assert_eq!(scalar.stats(), batched.stats());
            prop_assert_eq!(scalar.time(), batched.time());
            prop_assert_eq!(
                scalar.cache().sorted_pages(),
                batched.cache().sorted_pages()
            );
        }
    }
}
