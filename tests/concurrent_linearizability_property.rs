//! Linearizability-style property test for the sharded page table.
//!
//! Worker threads issue random op batches — probes (repeat requests
//! that may hit), inserts (first touches with free space), and evicts
//! (first touches against a full cache) — against the lock-striped
//! concurrent engine. The engine records a total commit order (the
//! `seq`-ordered commit schedule). The test then checks that this
//! order is a **legal sequential history** of the k-capacity page set
//! by replaying it op-for-op against a sequential [`PageLists`] model:
//! one intrusive list per shard segment over the page arena, exactly
//! the structure the flat-array policies index. Every recorded outcome
//! must be consistent with the model's state at its commit point —
//! hits find the page linked in its home segment, inserts link a new
//! page while below capacity, evictions unlink the recorded victim at
//! exactly full capacity — and the final model occupancy must match
//! the engine's accounting. If the striped engine ever tore an update
//! (a page in two segments, a lost unlink, a capacity over-grant),
//! some commit in the recorded order would be inconsistent with every
//! sequential execution, and this check fails.

use occ_baselines::{Fifo, Lru};
use occ_sim::concurrent::{run_shared, shard_of, CommitOutcome, ConcurrentEngine};
use occ_sim::probe::NoopRecorder;
use occ_sim::{FaultPolicy, PageLists, ReplacementPolicy, Trace, TraceSource, Universe};
use proptest::prelude::*;

type SharedPolicy = Box<dyn ReplacementPolicy + Send>;

fn policies(idx: usize, table_shards: usize) -> Vec<SharedPolicy> {
    (0..table_shards)
        .map(|_| -> SharedPolicy {
            if idx == 0 {
                Box::new(Lru::new())
            } else {
                Box::new(Fifo::new())
            }
        })
        .collect()
}

#[allow(clippy::type_complexity)]
fn arb_batches() -> impl Strategy<Value = ((usize, usize, usize), usize, u32, u32, Vec<Vec<u32>>)> {
    (1usize..=4, 1usize..=6, 0usize..2, 1u32..=3, 1u32..=5).prop_flat_map(
        |(threads, shards, policy, users, pages_per)| {
            let total = users * pages_per;
            (
                Just((threads, shards, policy)),
                1usize..=5,
                Just(users),
                Just(pages_per),
                proptest::collection::vec(proptest::collection::vec(0..total, 0..150), threads),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn commit_order_is_a_legal_sequential_history(
        ((threads, table_shards, policy_idx), k, users, pages_per, batches) in arb_batches(),
    ) {
        prop_assert_eq!(batches.len(), threads);
        let universe = Universe::uniform(users, pages_per);
        let traces: Vec<Trace> = batches
            .iter()
            .map(|idxs| Trace::from_page_indices(&universe, idxs))
            .collect();
        let engine = ConcurrentEngine::new(
            k,
            universe.clone(),
            FaultPolicy::SkipAndCount,
            policies(policy_idx, table_shards),
        );
        let mut sources: Vec<TraceSource> = traces.iter().map(TraceSource::new).collect();
        let mut recorders = vec![NoopRecorder; sources.len()];
        let outcome = run_shared(&engine, &mut sources, &mut recorders).expect("clean run");

        // Sequential model: one PageLists arena, one list per shard
        // segment; linked = cached. Apply the recorded commit order.
        let mut model = PageLists::with_size(table_shards, universe.num_pages() as usize);
        let mut occupancy = 0usize;
        for e in outcome.schedule.entries() {
            let home = shard_of(e.page, table_shards);
            prop_assert_eq!(
                e.shard as usize, home,
                "seq {}: page {:?} committed in segment {} but hashes to {}",
                e.seq, e.page, e.shard, home
            );
            match e.outcome {
                CommitOutcome::Hit => {
                    prop_assert_eq!(
                        model.list_of(e.page), Some(home),
                        "seq {}: hit on a page the sequential model does not have cached",
                        e.seq
                    );
                }
                CommitOutcome::Insert => {
                    prop_assert!(
                        !model.contains(e.page),
                        "seq {}: insert of an already-cached page", e.seq
                    );
                    prop_assert!(
                        occupancy < k,
                        "seq {}: insert into a full cache (capacity over-grant)", e.seq
                    );
                    model.push_back(home, e.page);
                    occupancy += 1;
                }
                CommitOutcome::Evict { victim } => {
                    prop_assert_eq!(
                        occupancy, k,
                        "seq {}: eviction while below capacity", e.seq
                    );
                    prop_assert!(
                        model.contains(victim),
                        "seq {}: evicted a page the model does not have cached", e.seq
                    );
                    prop_assert!(
                        !model.contains(e.page),
                        "seq {}: evict-path insert of an already-cached page", e.seq
                    );
                    model.remove(victim);
                    model.push_back(home, e.page);
                }
                CommitOutcome::Drop { .. } => {}
            }
        }

        // End state: the model's occupancy matches the engine's books.
        let linked: usize = (0..table_shards).map(|s| model.len(s)).sum();
        prop_assert_eq!(linked, occupancy);
        let inserts = outcome.stats.total_misses() - outcome.stats.total_evictions();
        prop_assert_eq!(occupancy as u64, inserts, "inserts minus evictions+evicts net out");
        // Each segment holds only pages that hash to it.
        for s in 0..table_shards {
            for p in model.iter(s) {
                prop_assert_eq!(shard_of(p, table_shards), s);
            }
        }
    }
}
