//! Property-based tests (proptest) over the core invariants:
//!
//! * ALG-DISCRETE (fast) ≡ Figure 3 reference ≡ ALG-CONT on random
//!   traces, cost profiles and cache sizes;
//! * budgets / duals stay non-negative for convex costs;
//! * the §2.3 invariant checker passes on every random flushed run;
//! * Theorem 1.1 holds against the exact OPT on random small instances;
//! * Claim 2.3 holds for random convex functions and partitions;
//! * the induced (ICP) solution is always feasible with matching
//!   objective.

use occ_core::{
    check_claim_2_3, check_invariants, run_continuous, with_dummy_flush, Assignment, ConvexCaching,
    ConvexProgram, CostFn, CostProfile, DiscreteReference, Linear, Marginals, Monomial,
    PiecewiseLinear, TieBreak,
};
use occ_offline::exact_opt;
use occ_sim::{ReplacementPolicy, Simulator, Trace, Universe};
use proptest::prelude::*;
use std::sync::Arc;

/// Integer-parameter cost functions keep all budget arithmetic exactly
/// representable in f64, so implementation-equivalence tests can require
/// bit-identical decisions.
fn arb_cost() -> impl Strategy<Value = CostFn> {
    prop_oneof![
        (1u32..=5).prop_map(|w| Arc::new(Linear::new(w as f64)) as CostFn),
        (2u32..=3).prop_map(|b| Arc::new(Monomial::power(b as f64)) as CostFn),
        ((1u32..=8), (2u32..=20)).prop_map(|(s, b)| Arc::new(PiecewiseLinear::sla(
            b as f64,
            s as f64,
            (s * 4) as f64
        )) as CostFn),
    ]
}

fn arb_instance() -> impl Strategy<Value = (Universe, Vec<u32>, CostProfile, usize)> {
    (2u32..=3, 2u32..=4).prop_flat_map(|(users, pages_per)| {
        let total = users * pages_per;
        (
            proptest::collection::vec(0..total, 20..200),
            proptest::collection::vec(arb_cost(), users as usize),
            2..=((total - 1).max(2) as usize),
        )
            .prop_map(move |(pages, fns, k)| {
                (
                    Universe::uniform(users, pages_per),
                    pages,
                    CostProfile::new(fns),
                    k.min(total as usize - 1),
                )
            })
    })
}

fn evictions<P: ReplacementPolicy>(p: &mut P, trace: &Trace, k: usize) -> Vec<(u64, u32)> {
    Simulator::new(k)
        .record_events(true)
        .run(p, trace)
        .events
        .unwrap()
        .eviction_sequence()
        .iter()
        .map(|&(t, pg)| (t, pg.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn three_implementations_agree((universe, pages, costs, k) in arb_instance()) {
        let trace = Trace::from_page_indices(&universe, &pages);
        let mut fast = ConvexCaching::new(costs.clone());
        let mut reference = DiscreteReference::new(costs.clone());
        let e_fast = evictions(&mut fast, &trace, k);
        let e_ref = evictions(&mut reference, &trace, k);
        prop_assert_eq!(&e_fast, &e_ref);
        let cont = run_continuous(&trace, k, &costs, Marginals::Derivative, TieBreak::OldestRequest);
        let e_cont: Vec<(u64, u32)> =
            cont.eviction_sequence.iter().map(|&(t, p)| (t, p.0)).collect();
        prop_assert_eq!(&e_fast, &e_cont);
    }

    #[test]
    fn budgets_nonnegative_for_convex_costs((universe, pages, costs, k) in arb_instance()) {
        let trace = Trace::from_page_indices(&universe, &pages);
        let mut alg = ConvexCaching::new(costs);
        Simulator::new(k).run(&mut alg, &trace);
        let d = alg.diagnostics();
        prop_assert!(
            d.evictions == 0 || d.min_budget >= -1e-9,
            "negative budget {} with convex costs", d.min_budget
        );
        prop_assert!(d.global_y >= -1e-9, "dual offset went negative");
    }

    #[test]
    fn invariants_hold_on_flushed_runs((universe, pages, costs, k) in arb_instance()) {
        let trace = Trace::from_page_indices(&universe, &pages);
        let (ft, fc) = with_dummy_flush(&trace, &costs, k);
        let run = run_continuous(&ft, k, &fc, Marginals::Derivative, TieBreak::OldestRequest);
        let report = check_invariants(&ft, k, &fc, Marginals::Derivative, &run, true, 1e-6);
        prop_assert!(report.all_ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn induced_solution_feasible_with_matching_objective(
        (universe, pages, costs, k) in arb_instance()
    ) {
        let trace = Trace::from_page_indices(&universe, &pages);
        let mut alg = ConvexCaching::new(costs.clone());
        let result = Simulator::new(k).record_events(true).run(&mut alg, &trace);
        let assignment = Assignment::from_eviction_log(&trace, result.events.as_ref().unwrap());
        let cp = ConvexProgram::new(&trace, k);
        prop_assert!(cp.check_feasible(&assignment, 1e-9).is_ok());
        let objective = cp.objective(&assignment, &costs);
        let direct = costs.total_cost(&result.stats.eviction_vector());
        prop_assert!((objective - direct).abs() < 1e-6);
    }

    #[test]
    fn claim_2_3_random_partitions(
        cost in arb_cost(),
        xs in proptest::collection::vec(0.0f64..10.0, 1..15)
    ) {
        let out = check_claim_2_3(&*cost, &xs, None);
        prop_assert!(out.holds(1e-9), "claim 2.3 failed: {:?} on {:?}", out, xs);
    }
}

proptest! {
    // The exact solver is exponential; keep the instances tiny and the
    // case count small.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn theorem_1_1_vs_exact_opt(
        pages in proptest::collection::vec(0u32..4, 6..13),
        beta in 1u32..=3,
        k in 2usize..=3,
    ) {
        let universe = Universe::uniform(2, 2);
        let trace = Trace::from_page_indices(&universe, &pages);
        let costs = CostProfile::uniform(2, Monomial::power(beta as f64));
        let mut alg = ConvexCaching::new(costs.clone());
        let a = Simulator::new(k).run(&mut alg, &trace).miss_vector();
        let opt = exact_opt(&trace, k, &costs);
        let online = costs.total_cost(&a);
        let rhs = occ_core::theorem_1_1_rhs(&costs, &opt.misses, beta as f64, k);
        prop_assert!(
            online <= rhs + 1e-9,
            "Theorem 1.1 violated: online {online} > rhs {rhs} (opt misses {:?}, online misses {:?}, pages {:?})",
            opt.misses, a, pages
        );
        // ...and OPT really is a lower bound on the online cost.
        prop_assert!(opt.cost <= online + 1e-9);
    }
}
