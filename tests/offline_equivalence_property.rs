//! Property tests pinning the offline-oracle hierarchy on tiny
//! instances, where the exponential `exact_opt` solver is ground truth:
//!
//! * for **linear** costs the objective `Σ_i w·m_i` is proportional to
//!   the total miss count, so Belady's exchange argument applies and the
//!   miss-minimizing Belady schedule attains the exact optimum;
//! * for **convex** costs Belady is merely feasible: its cost can never
//!   beat the exact optimum (this is the soundness direction the
//!   conformance harness leans on when it uses Belady as the offline
//!   reference for single-user cells);
//! * the exact solver, conversely, can never miss fewer *total* pages
//!   than Belady, which is miss-count optimal.
//!
//! Instances are deliberately tiny (≤ 3 users, k ≤ 4, traces ≤ 12) so the
//! memoized search stays well inside its state budget.

use occ_core::{CostProfile, Linear, Monomial, PiecewiseLinear};
use occ_offline::{belady_miss_vector, belady_total_misses, exact_opt};
use occ_sim::{Trace, Universe};
use proptest::prelude::*;
use std::sync::Arc;

/// Universe, request list, and cache size for a tiny instance.
fn tiny_instance() -> impl Strategy<Value = (Universe, Vec<u32>, usize)> {
    (1u32..=3, 1u32..=2).prop_flat_map(|(users, pages_per)| {
        let total = users * pages_per;
        (proptest::collection::vec(0..total, 0..13), 1usize..=4)
            .prop_map(move |(pages, k)| (Universe::uniform(users, pages_per), pages, k))
    })
}

proptest! {
    // exact_opt is exponential; tiny instances keep each case cheap, so a
    // healthy case count is affordable.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn belady_attains_the_exact_optimum_for_linear_costs(
        (universe, pages, k) in tiny_instance(),
        weight in 1u32..=3,
    ) {
        let trace = Trace::from_page_indices(&universe, &pages);
        let costs = CostProfile::uniform(universe.num_users(), Linear::new(weight as f64));
        let belady_cost = costs.total_cost(&belady_miss_vector(&trace, k));
        let opt = exact_opt(&trace, k, &costs);
        // Equal-weight linear objective == weight × total misses, where
        // Belady is provably optimal; both sides are small integers times
        // `weight`, so exact equality in f64 is the right assertion.
        prop_assert_eq!(belady_cost, opt.cost);
    }

    #[test]
    fn belady_never_beats_the_exact_optimum_for_convex_costs(
        (universe, pages, k) in tiny_instance(),
        beta in 2u32..=3,
    ) {
        let trace = Trace::from_page_indices(&universe, &pages);
        let costs = CostProfile::uniform(universe.num_users(), Monomial::power(beta as f64));
        let belady_cost = costs.total_cost(&belady_miss_vector(&trace, k));
        let opt = exact_opt(&trace, k, &costs);
        prop_assert!(
            belady_cost >= opt.cost - 1e-9,
            "Belady schedule cost {} undercuts exact optimum {}",
            belady_cost,
            opt.cost
        );
        // And the exact schedule, optimizing cost not misses, can never
        // miss fewer total pages than the miss-count-optimal schedule.
        let exact_total: u64 = opt.misses.iter().sum();
        prop_assert!(exact_total >= belady_total_misses(&trace, k));
    }

    #[test]
    fn belady_never_beats_exact_for_sla_costs(
        (universe, pages, k) in tiny_instance(),
        tolerance in 1u32..=4,
        penalty in 2u32..=8,
    ) {
        // The paper's motivating convex shape: kinked rather than smooth,
        // so the gap between miss-minimizing and cost-minimizing
        // schedules is often strict.
        let trace = Trace::from_page_indices(&universe, &pages);
        let f = PiecewiseLinear::sla(tolerance as f64, 1.0, penalty as f64);
        let costs = CostProfile::new(
            (0..universe.num_users()).map(|_| Arc::new(f.clone()) as _).collect(),
        );
        let belady_cost = costs.total_cost(&belady_miss_vector(&trace, k));
        let opt = exact_opt(&trace, k, &costs);
        prop_assert!(
            belady_cost >= opt.cost - 1e-9,
            "Belady schedule cost {} undercuts exact optimum {}",
            belady_cost,
            opt.cost
        );
    }
}
