//! End-to-end conformance-harness checks: the smoke grid must certify
//! every covered theorem (no FAILs, no unexpectedly-vacuous cells), the
//! weakened fixture must fail with a shrunken counterexample, and the
//! verdict JSON must be deterministic and schema-valid.

use occ_conformance::{grid, run_grid, RunConfig, Verdict, VerdictTable};
use occ_probe::Json;

#[test]
fn smoke_grid_passes_every_non_vacuous_cell() {
    let g = grid("smoke").expect("smoke grid exists");
    let out = run_grid(&g, &RunConfig::default());
    for c in &out.verdicts.cells {
        assert_ne!(
            c.verdict,
            Verdict::Fail,
            "cell {} failed: lhs {} {} rhs {} ({})",
            c.id,
            c.lhs,
            c.op,
            c.rhs,
            c.note
        );
    }
    let (pass, fail, vacuous) = out.verdicts.counts();
    assert_eq!(fail, 0);
    // Exactly the two deliberately-vacuous cells (unbounded α, empty
    // trace) may be vacuous; everything else must be real evidence.
    assert_eq!(
        vacuous,
        2,
        "unexpected vacuous cells:\n{}",
        out.verdicts.to_table()
    );
    assert_eq!(pass, g.cells.len() - 2);
}

#[test]
fn smoke_grid_covers_all_four_paper_statements_non_vacuously() {
    let g = grid("smoke").expect("smoke grid exists");
    let out = run_grid(&g, &RunConfig::default());
    for check in ["T1.1", "T1.3", "C2.3", "T1.4"] {
        assert!(
            out.verdicts
                .cells
                .iter()
                .any(|c| c.check == check && c.verdict == Verdict::Pass),
            "{check} has no passing cell"
        );
    }
}

#[test]
fn full_grid_passes_every_non_vacuous_cell() {
    let g = grid("full").expect("full grid exists");
    let out = run_grid(&g, &RunConfig::default());
    for c in &out.verdicts.cells {
        assert_ne!(
            c.verdict,
            Verdict::Fail,
            "cell {} failed: lhs {} {} rhs {} ({})",
            c.id,
            c.lhs,
            c.op,
            c.rhs,
            c.note
        );
    }
}

#[test]
fn verdict_json_is_deterministic_and_validates() {
    let g = grid("smoke").expect("smoke grid exists");
    let cfg = RunConfig::default();
    let a = run_grid(&g, &cfg).verdicts.to_json();
    let b = run_grid(&g, &cfg).verdicts.to_json();
    assert_eq!(a, b, "same seed must produce byte-identical verdict JSON");
    VerdictTable::validate(&Json::parse(&a).expect("well-formed JSON")).expect("schema-valid");
}

#[test]
fn weakened_fixture_fails_and_shrinks() {
    let g = grid("smoke").expect("smoke grid exists");
    let cfg = RunConfig {
        weaken: 1e-6,
        ..RunConfig::default()
    };
    let out = run_grid(&g, &cfg);
    assert!(out.verdicts.any_fail(), "weakened bounds must be violated");
    let failing: Vec<_> = out
        .verdicts
        .cells
        .iter()
        .filter(|c| c.verdict == Verdict::Fail)
        .collect();
    for c in &failing {
        let s = c
            .shrunk
            .as_ref()
            .unwrap_or_else(|| panic!("failing cell {} has no shrunk counterexample", c.id));
        assert!(s.len <= c.len && s.k <= c.k);
        // A violated "≤" leaves lhs above rhs; a violated "≥" the
        // reverse (Theorem 1.4's growth requirement).
        let still_violated = match c.op {
            "<=" => s.lhs > s.rhs,
            ">=" => s.lhs < s.rhs,
            other => panic!("unknown op {other}"),
        };
        assert!(
            still_violated,
            "shrunk instance must still violate the bound"
        );
    }
}
