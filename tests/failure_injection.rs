//! Failure-injection tests: external page removals (pool migrations)
//! interleaved randomly with requests must keep every policy's internal
//! index structures consistent with the cache.
//!
//! The engine asserts that a chosen victim is actually cached, so a
//! policy with a stale index (e.g. an ordered set still holding a
//! removed page) fails loudly here.

use occ_baselines::{Fifo, GreedyDual, Lfu, Lru, LruK, Marking, RandomEvict, RandomizedMarking};
use occ_core::{ConvexCaching, CostProfile, Monomial};
use occ_offline::Belady;
use occ_sim::{PageId, ReplacementPolicy, SteppingEngine, Trace, Universe, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn trace() -> Trace {
    let u = Universe::uniform(3, 4);
    let pages: Vec<u32> = (0..3_000u32).map(|i| (i * 13 + 5) % 12).collect();
    Trace::from_page_indices(&u, &pages)
}

/// Drive `policy` with random external removals injected every few
/// requests. Returns total misses.
fn run_with_removals<P: ReplacementPolicy>(policy: P, trace: &Trace, k: usize, seed: u64) -> u64 {
    let universe = trace.universe().clone();
    let mut engine = SteppingEngine::new(k, universe.clone(), policy);
    let mut rng = StdRng::seed_from_u64(seed);
    for (t, req) in trace.iter() {
        engine.step(req);
        if t % 17 == 16 {
            // Remove a random page (no-op if not cached) or a whole user.
            if rng.gen_bool(0.3) {
                let user = UserId(rng.gen_range(0..universe.num_users()));
                engine.remove_user_externally(user);
            } else {
                let page = PageId(rng.gen_range(0..universe.num_pages()));
                engine.remove_externally(page);
            }
        }
    }
    engine.stats().total_misses()
}

#[test]
fn every_policy_survives_random_external_removals() {
    let trace = trace();
    let costs = CostProfile::uniform(3, Monomial::power(2.0));
    let k = 6;
    let weights = vec![1.0, 2.0, 3.0];

    let baseline_misses = run_with_removals(Lru::new(), &trace, k, 1);
    assert!(baseline_misses > 0);

    // Each policy must complete without tripping the engine's
    // victim-must-be-cached assertion.
    run_with_removals(ConvexCaching::new(costs.clone()), &trace, k, 2);
    run_with_removals(Fifo::new(), &trace, k, 3);
    run_with_removals(Lfu::new(), &trace, k, 4);
    run_with_removals(Marking::new(), &trace, k, 5);
    run_with_removals(LruK::new(2), &trace, k, 6);
    run_with_removals(RandomEvict::new(7), &trace, k, 7);
    run_with_removals(RandomizedMarking::new(8), &trace, k, 8);
    run_with_removals(GreedyDual::new(weights), &trace, k, 9);
    run_with_removals(occ_baselines::CostGreedy::new(costs.clone()), &trace, k, 10);
    run_with_removals(Belady::new(&trace), &trace, k, 11);
}

#[test]
fn removals_only_increase_misses() {
    let trace = trace();
    let k = 6;
    // Same policy, with vs without injected removals.
    let with = run_with_removals(Lru::new(), &trace, k, 42);
    let without = {
        let mut lru = Lru::new();
        occ_sim::Simulator::new(k)
            .run(&mut lru, &trace)
            .total_misses()
    };
    assert!(
        with >= without,
        "dropping cached pages cannot reduce LRU misses: {with} < {without}"
    );
}

#[test]
fn convex_caching_decisions_stay_dual_feasible_under_removals() {
    let trace = trace();
    let costs = CostProfile::uniform(3, Monomial::power(2.0));
    let universe = trace.universe().clone();
    let mut engine = SteppingEngine::new(6, universe, ConvexCaching::new(costs));
    for (t, req) in trace.iter() {
        engine.step(req);
        if t % 29 == 28 {
            engine.remove_externally(req.page);
        }
    }
    let diag = engine.policy().diagnostics();
    assert!(diag.evictions > 0);
    assert!(
        diag.min_budget >= -1e-9,
        "budgets must stay non-negative even with external removals: {}",
        diag.min_budget
    );
}
