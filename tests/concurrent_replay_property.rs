//! Property tests for the concurrent shared-cache engine's determinism
//! contract: for ANY thread count, shard count, shareable policy, and
//! seeded per-thread request schedule, the single-threaded replay of the
//! recorded commit schedule must reproduce the concurrent run exactly —
//! per-user hit/miss/eviction vectors, fault counters, and the
//! quarantine set. Plus the deterministic edge-case sweep: k=1, S=1,
//! more threads than shards, one user owning every page, and empty
//! request streams.

use occ_baselines::{Fifo, GreedyDual, Lru};
use occ_sim::concurrent::{replay_schedule, run_shared, verify_replay, ConcurrentEngine};
use occ_sim::probe::NoopRecorder;
use occ_sim::{FaultPolicy, ReplacementPolicy, SharedOutcome, Trace, TraceSource, Universe};
use proptest::prelude::*;

type SharedPolicy = Box<dyn ReplacementPolicy + Send>;

/// The shard-safe policy suite (callback-pure: reads only
/// `ctx.universe`). Index-addressed so proptest can pick one.
fn shared_policies(idx: usize, table_shards: usize, num_users: u32) -> Vec<SharedPolicy> {
    (0..table_shards)
        .map(|_| -> SharedPolicy {
            match idx {
                0 => Box::new(Lru::new()),
                1 => Box::new(Fifo::new()),
                _ => Box::new(GreedyDual::unweighted(num_users)),
            }
        })
        .collect()
}

/// Run `traces` concurrently (one worker per trace) against one shared
/// cache, then replay the recorded schedule and demand exact equality.
fn run_and_replay(
    traces: &[Trace],
    k: usize,
    table_shards: usize,
    policy_idx: usize,
    degrade: FaultPolicy,
) -> (SharedOutcome, occ_sim::concurrent::ReplayOutcome) {
    let universe = traces[0].universe().clone();
    let num_users = universe.num_users();
    let engine = ConcurrentEngine::new(
        k,
        universe.clone(),
        degrade,
        shared_policies(policy_idx, table_shards, num_users),
    );
    let mut sources: Vec<TraceSource> = traces.iter().map(TraceSource::new).collect();
    let mut recorders = vec![NoopRecorder; sources.len()];
    let outcome = run_shared(&engine, &mut sources, &mut recorders).expect("run cannot fault");
    let replayed = replay_schedule(
        k,
        universe,
        shared_policies(policy_idx, table_shards, num_users),
        degrade,
        &outcome.schedule,
    )
    .expect("schedule must replay");
    verify_replay(&outcome, &replayed).expect("replay must be identical");
    (outcome, replayed)
}

/// (threads, table_shards, policy, k, users, pages-per-user) plus one
/// request-index vector per thread over the shared universe.
#[allow(clippy::type_complexity)]
fn arb_shape() -> impl Strategy<Value = ((usize, usize, usize), usize, u32, u32, Vec<Vec<u32>>)> {
    (1usize..=4, 1usize..=8, 0usize..3, 1u32..=3, 1u32..=4).prop_flat_map(
        |(threads, shards, policy, users, pages_per)| {
            let total = users * pages_per;
            (
                Just((threads, shards, policy)),
                1usize..=6,
                Just(users),
                Just(pages_per),
                proptest::collection::vec(proptest::collection::vec(0..total, 0..120), threads),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_equals_replay_for_any_shape(
        ((threads, table_shards, policy_idx), k, users, pages_per, schedules) in arb_shape(),
    ) {
        prop_assert_eq!(schedules.len(), threads);
        let universe = Universe::uniform(users, pages_per);
        let traces: Vec<Trace> = schedules
            .iter()
            .map(|idxs| Trace::from_page_indices(&universe, idxs))
            .collect();
        let (outcome, replayed) =
            run_and_replay(&traces, k, table_shards, policy_idx, FaultPolicy::SkipAndCount);

        // The explicit satellite contract, beyond verify_replay's own
        // check: per-user miss vectors and fault counters byte-equal.
        prop_assert_eq!(outcome.stats.miss_vector(), replayed.stats.miss_vector());
        prop_assert_eq!(outcome.stats.per_user(), replayed.stats.per_user());
        prop_assert_eq!(&outcome.counters, &replayed.counters);
        prop_assert_eq!(&outcome.quarantined, &replayed.quarantined);

        // Every consumed record drew exactly one commit slot.
        let consumed: usize = traces.iter().map(Trace::len).sum();
        prop_assert_eq!(outcome.schedule.len(), consumed);
    }
}

/// A trace of `n` round-robin pages over `universe`.
fn cyclic_trace(universe: &Universe, n: usize) -> Trace {
    let total = universe.num_pages();
    let idxs: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 1) % total).collect();
    Trace::from_page_indices(universe, &idxs)
}

#[test]
fn edge_case_k1_thrashes_identically() {
    let universe = Universe::uniform(2, 4);
    let traces: Vec<Trace> = (0..4).map(|_| cyclic_trace(&universe, 200)).collect();
    let (outcome, _) = run_and_replay(&traces, 1, 4, 0, FaultPolicy::SkipAndCount);
    assert_eq!(outcome.schedule.len(), 800);
    // k=1: after the first insert every miss is an eviction.
    assert_eq!(
        outcome.stats.total_evictions(),
        outcome.stats.total_misses() - 1
    );
}

#[test]
fn edge_case_single_segment_is_one_big_lock() {
    let universe = Universe::uniform(3, 3);
    let traces: Vec<Trace> = (0..4).map(|_| cyclic_trace(&universe, 150)).collect();
    let (outcome, _) = run_and_replay(&traces, 4, 1, 1, FaultPolicy::SkipAndCount);
    assert_eq!(outcome.schedule.len(), 600);
    for e in outcome.schedule.entries() {
        assert_eq!(e.shard, 0, "S=1 maps every page to segment 0");
    }
}

#[test]
fn edge_case_more_threads_than_segments() {
    let universe = Universe::uniform(2, 5);
    let traces: Vec<Trace> = (0..6).map(|_| cyclic_trace(&universe, 100)).collect();
    let (outcome, _) = run_and_replay(&traces, 3, 2, 2, FaultPolicy::SkipAndCount);
    assert_eq!(outcome.schedule.len(), 600);
    let threads: std::collections::BTreeSet<u32> = outcome
        .schedule
        .entries()
        .iter()
        .map(|e| e.thread)
        .collect();
    assert_eq!(threads.len(), 6, "every worker committed something");
}

#[test]
fn edge_case_one_user_owns_every_page() {
    let universe = Universe::single_user(8);
    let traces: Vec<Trace> = (0..4).map(|_| cyclic_trace(&universe, 120)).collect();
    let (outcome, replayed) = run_and_replay(&traces, 3, 4, 0, FaultPolicy::SkipAndCount);
    assert_eq!(outcome.stats.per_user().len(), 1);
    assert_eq!(
        outcome.stats.per_user()[0].evictions,
        replayed.stats.per_user()[0].evictions
    );
}

#[test]
fn edge_case_empty_streams_commit_nothing() {
    let universe = Universe::uniform(2, 3);
    let traces: Vec<Trace> = (0..4)
        .map(|_| Trace::from_page_indices(&universe, &[]))
        .collect();
    let (outcome, replayed) = run_and_replay(&traces, 2, 4, 0, FaultPolicy::SkipAndCount);
    assert!(outcome.schedule.is_empty());
    assert_eq!(outcome.stats.total_misses(), 0);
    assert_eq!(replayed.stats.total_misses(), 0);
}
