//! Offline stand-in for the `rand` crate (0.8 API subset), used because
//! this build environment has no access to crates.io.
//!
//! Implements exactly what the workspace calls: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}` for
//! integer and float ranges. The generator is xoshiro256++ seeded through
//! SplitMix64 — *not* the ChaCha12 stream of the real `StdRng`, so seeded
//! sequences differ from upstream `rand` (every consumer in this workspace
//! only relies on determinism and statistical quality, not on the exact
//! stream).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw words
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from (`Range` and `RangeInclusive`).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++.
    ///
    /// Statistically strong, tiny, and fast; seeded via SplitMix64 as the
    /// xoshiro authors recommend. Not the ChaCha12 stream of upstream
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's full internal state (four xoshiro256++ words).
        /// Together with [`StdRng::from_state`] this lets simulation
        /// checkpoints capture and restore the exact stream position —
        /// replaying draws is impossible in general (range spans vary),
        /// so checkpointing must go through the raw state.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator at an exact stream position captured by
        /// [`StdRng::state`].
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn uniformity_rough() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
