//! Offline stand-in for `criterion`, used because this build environment
//! has no access to crates.io.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros —
//! over a plain wall-clock harness: per benchmark it warms up, then takes
//! `sample_size` timed samples and reports min/median/mean per-iteration
//! time plus derived throughput. No statistical regression analysis, no
//! HTML reports, no saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work one benchmark iteration performs, for derived
/// throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. requests) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (`BenchmarkId::from_parameter(k)`).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    /// Measured per-iteration sample durations, filled by `iter`.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `f`: warm up ~50 ms, pick an iteration count that makes a
    /// sample take ~20 ms, then record `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: how many iterations fit in ~20ms?
        let warmup_deadline = Instant::now() + Duration::from_millis(50);
        let mut calib_iters: u64 = 0;
        let calib_start = Instant::now();
        while Instant::now() < warmup_deadline {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        let iters_per_sample = ((0.02 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.0} {unit}/s")
    }
}

/// A named collection of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return;
        }
        b.samples.sort();
        let median = b.samples[b.samples.len() / 2];
        let min = b.samples[0];
        let max = b.samples[b.samples.len() - 1];
        let mut line = format!(
            "{}/{id}\n    time:   [{} {} {}]",
            self.name,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
        if let Some(t) = self.throughput {
            let secs = median.as_secs_f64();
            let (work, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem"),
                Throughput::Bytes(n) => (n as f64, "B"),
            };
            line.push_str(&format!("\n    thrpt:  {}", fmt_rate(work / secs, unit)));
        }
        println!("{line}");
    }

    /// Benchmark a closure that receives an input reference.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run_one(id.name.clone(), |b| f(b, input));
        self
    }

    /// Benchmark a plain closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        self.run_one(id.name.clone(), f);
        self
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores CLI arguments (API parity with the generated
    /// `criterion_main!` of the real crate).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Benchmark a plain closure outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut group = BenchmarkGroup {
            _criterion: self,
            name: "bench".into(),
            throughput: None,
            sample_size: 10,
        };
        group.run_one(id.name.clone(), f);
        self
    }
}

/// Bundle benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub-smoke");
        g.sample_size(2);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        // The stub must time closures without panicking; timings are not
        // asserted (CI machines vary wildly).
        let mut c = Criterion::default();
        quick(&mut c);
    }
}
