//! Offline stand-in for `serde`, used because this build environment has
//! no access to crates.io.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (there is no
//! serde_json or other serializer in the dependency tree), so the derives
//! can expand to nothing: the attribute positions stay valid and no code
//! ever requires the real trait impls. If a future PR adds an actual
//! serializer, replace this stub with the real crate (or vendor it).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
