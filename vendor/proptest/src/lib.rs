//! Offline stand-in for `proptest`, used because this build environment
//! has no access to crates.io.
//!
//! Supports the API subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` line,
//! `prop_assert!`/`prop_assert_eq!`, [`prop_oneof!`], strategies built
//! from integer/float ranges and tuples, `prop_map`/`prop_flat_map`,
//! [`collection::vec`], and [`strategy::Just`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` form (strategies carry values, not value trees).
//! * Case generation is seeded deterministically from the test's name, so
//!   failures reproduce across runs.
//! * `prop_assert*` panics instead of returning `Result` (the runner does
//!   not distinguish rejection from failure).

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::ProptestConfig;

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size of a generated collection: an exact
    /// `usize` or a range of lengths.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a property test; panics (no rejection machinery).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip when `cond` is false. Real proptest re-draws the case; this
/// stand-in ends the test early (it has run every prior case already).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice between strategies with the same `Value` type.
/// (Weighted arms are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Define property tests: each function runs `cases` times with fresh
/// random inputs drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::Arc;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn map_and_flat_map(e in arb_even(), v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n))) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_oneof((a, b) in (1u32..4, 10u64..20), c in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!((1..4).contains(&a) && (10..20).contains(&b));
            prop_assert!(c == 1 || c == 2);
        }

        #[test]
        fn trait_objects_via_map(f in (1u32..5).prop_map(|w| Arc::new(move |x: f64| w as f64 * x) as Arc<dyn Fn(f64) -> f64>)) {
            prop_assert!(f(2.0) >= 2.0);
        }

        #[test]
        fn collection_vec_sizes(v in crate::collection::vec(0u32..100, 20..30), w in crate::collection::vec(Just(7u8), 3usize)) {
            prop_assert!((20..30).contains(&v.len()));
            prop_assert_eq!(w, vec![7u8; 3]);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::TestRng;
        let draw = || {
            let mut rng = TestRng::from_name("fixed-name");
            crate::Strategy::new_value(&crate::collection::vec(0u32..1000, 10usize), &mut rng)
        };
        assert_eq!(draw(), draw());
    }
}
