//! Value-generation strategies (no shrinking: a strategy draws a value,
//! it does not build a value tree).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each generated value and draw from it
    /// (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Re-draw until `pred` holds (up to a generous retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from at least one arm.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() as usize) % self.arms.len();
        self.arms[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
