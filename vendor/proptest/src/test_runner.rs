//! The (minimal) test runner: per-test deterministic RNG and the case
//! count configuration.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property. Real proptest defaults to
    /// 256; this stand-in defaults lower to keep offline CI fast.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator (SplitMix64 seeded by FNV-1a of the
/// test's fully qualified name), so failures reproduce run to run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
