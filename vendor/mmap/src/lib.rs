#![warn(missing_docs)]
//! Read-only memory-mapped files, offline stand-in edition.
//!
//! The build environment has no crates.io access, so this crate
//! implements exactly the subset the workspace needs: map a whole file
//! read-only, deref it as `&[u8]`, optionally hint sequential access to
//! the kernel, and unmap on drop. The syscalls come from the platform
//! libc that `std` already links — no new dependency enters the build.
//!
//! On non-Unix targets [`Mmap::map_readonly`] returns
//! `ErrorKind::Unsupported`; callers are expected to fall back to
//! buffered reads (which is also the right move for pipes and other
//! non-regular files, where mapping is impossible or meaningless).

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only mapping of an entire file.
///
/// The mapping is private (`MAP_PRIVATE`) and never written through, so
/// concurrent appends to the underlying file are invisible and harmless;
/// truncating the file underneath a live mapping is the usual mmap
/// hazard (SIGBUS on access) and is on the caller, exactly as with any
/// mmap crate.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// An immutable byte region with no interior mutability is safe to send
// and share; the pointer is only freed in `Drop`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in its entirety. Empty files produce an
    /// empty mapping without touching `mmap` (a zero-length map is
    /// `EINVAL` on most kernels).
    pub fn map_readonly(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        sys::map(file, len)
    }

    /// Number of mapped bytes (the file length at map time).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tell the kernel the mapping will be read front to back
    /// (`madvise(MADV_SEQUENTIAL)`), so readahead is aggressive and
    /// already-consumed pages are cheap to reclaim. Purely a hint:
    /// failures and unsupported platforms are ignored.
    pub fn advise_sequential(&self) {
        if self.len > 0 {
            sys::advise_sequential(self.ptr, self.len);
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // Safety: `ptr` is either a live mapping of exactly `len` bytes
        // or a dangling-but-aligned pointer with `len == 0`; both are
        // valid `&[u8]` constructions for the lifetime of `self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            sys::unmap(self.ptr, self.len);
        }
    }
}

#[cfg(unix)]
mod sys {
    use super::Mmap;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // The platform libc is already linked by std; declaring the three
    // calls we need avoids depending on the `libc` crate.
    use std::ffi::{c_int, c_void};
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        #[cfg(target_os = "linux")]
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    #[cfg(target_os = "linux")]
    const MADV_SEQUENTIAL: c_int = 2;

    pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
        // Safety: len > 0 (checked by the caller) and the fd is live for
        // the duration of the call; mmap keeps the mapping valid even
        // after the fd closes.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    pub fn unmap(ptr: *const u8, len: usize) {
        // Safety: (ptr, len) came from a successful `map` and is
        // unmapped exactly once, in Drop.
        unsafe {
            munmap(ptr as *mut c_void, len);
        }
    }

    #[cfg(target_os = "linux")]
    pub fn advise_sequential(ptr: *const u8, len: usize) {
        // Safety: (ptr, len) is a live mapping; madvise is a pure hint.
        unsafe {
            madvise(ptr as *mut c_void, len, MADV_SEQUENTIAL);
        }
    }

    #[cfg(not(target_os = "linux"))]
    pub fn advise_sequential(_ptr: *const u8, _len: usize) {}
}

#[cfg(not(unix))]
mod sys {
    use super::Mmap;
    use std::fs::File;
    use std::io;

    pub fn map(_file: &File, _len: usize) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory-mapped traces are only supported on unix; use the buffered reader",
        ))
    }

    pub fn unmap(_ptr: *const u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("mmap-stub-{name}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    #[cfg(unix)]
    fn maps_file_contents() {
        let path = tmp("basic", b"hello mapping");
        let file = File::open(&path).unwrap();
        let map = Mmap::map_readonly(&file).unwrap();
        assert_eq!(&map[..], b"hello mapping");
        assert_eq!(map.len(), 13);
        map.advise_sequential();
        assert_eq!(&map[6..], b"mapping");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[cfg(unix)]
    fn empty_file_maps_empty() {
        let path = tmp("empty", b"");
        let file = File::open(&path).unwrap();
        let map = Mmap::map_readonly(&file).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        map.advise_sequential();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[cfg(unix)]
    fn mapping_outlives_the_file_handle() {
        let path = tmp("outlive", b"still here");
        let map = {
            let file = File::open(&path).unwrap();
            Mmap::map_readonly(&file).unwrap()
        };
        assert_eq!(&map[..], b"still here");
        std::fs::remove_file(&path).ok();
    }
}
